"""Independent stability verification (Definition 1).

A matching is stable iff no passenger request and taxi would *both*
rather be with each other than with their current partners, where an
unmatched entity's partner is its dummy and any acceptable partner beats
the dummy.  Concretely, a mutually acceptable pair ``(p, r)`` blocks a
matching ``M`` when

* ``p`` is unmatched, or prefers ``r`` over ``M(p)``; **and**
* ``r`` is unmatched, or prefers ``p`` over ``M(r)``.

This module is deliberately written against the raw definition (no reuse
of deferred-acceptance internals) so it can act as an oracle in tests.
"""

from __future__ import annotations

from repro.core.errors import UnstableMatchingError
from repro.matching.preferences import PreferenceTable
from repro.matching.result import Matching

__all__ = ["find_blocking_pairs", "is_stable", "assert_stable", "is_valid_matching"]


def is_valid_matching(table: PreferenceTable, matching: Matching) -> bool:
    """Every matched pair must be mutually acceptable and ids must exist."""
    for proposer_id, reviewer_id in matching.pairs:
        if proposer_id not in table.proposer_prefs:
            return False
        if reviewer_id not in table.reviewer_prefs:
            return False
        if not table.mutually_acceptable(proposer_id, reviewer_id):
            return False
    return True


def find_blocking_pairs(table: PreferenceTable, matching: Matching) -> list[tuple[int, int]]:
    """All pairs that block ``matching``, sorted for determinism.

    An empty result means the matching is stable in the sense of
    Definition 1 (with dummy partners).
    """
    blocking: list[tuple[int, int]] = []
    for proposer_id, prefs in table.proposer_prefs.items():
        matched_reviewer = matching.reviewer_of(proposer_id)
        if matched_reviewer is None:
            # Unmatched: every acceptable reviewer beats the dummy.
            better_reviewers = prefs
        else:
            rank = table.proposer_rank(proposer_id, matched_reviewer)
            assert rank is not None, "matched pair must be acceptable"
            better_reviewers = prefs[:rank]
        for reviewer_id in better_reviewers:
            holder = matching.proposer_of(reviewer_id)
            if holder is None:
                blocking.append((proposer_id, reviewer_id))
            elif table.reviewer_prefers(reviewer_id, proposer_id, holder):
                blocking.append((proposer_id, reviewer_id))
    return sorted(blocking)


def is_stable(table: PreferenceTable, matching: Matching) -> bool:
    """Whether ``matching`` is valid and has no blocking pair."""
    return is_valid_matching(table, matching) and not find_blocking_pairs(table, matching)


def assert_stable(table: PreferenceTable, matching: Matching) -> None:
    """Raise :class:`UnstableMatchingError` when ``matching`` is not stable."""
    if not is_valid_matching(table, matching):
        raise UnstableMatchingError("matching contains an unacceptable or unknown pair")
    blocking = find_blocking_pairs(table, matching)
    if blocking:
        raise UnstableMatchingError(
            f"matching has {len(blocking)} blocking pair(s), e.g. {blocking[:3]}",
            blocking_pairs=blocking,
        )
