"""Independent stability verification (Definition 1).

A matching is stable iff no passenger request and taxi would *both*
rather be with each other than with their current partners, where an
unmatched entity's partner is its dummy and any acceptable partner beats
the dummy.  Concretely, a mutually acceptable pair ``(p, r)`` blocks a
matching ``M`` when

* ``p`` is unmatched, or prefers ``r`` over ``M(p)``; **and**
* ``r`` is unmatched, or prefers ``p`` over ``M(r)``.

This module is deliberately written against the raw definition (no reuse
of deferred-acceptance internals) so it can act as an oracle in tests.

Both preference representations are accepted: the dict
:class:`PreferenceTable` path scans lists entry by entry (the oracle),
while the :class:`~repro.matching.arrays.PreferenceArrays` path runs the
same Definition-1 test vectorized over the edge arrays — O(E) NumPy
instead of O(E) Python — which is what lets per-frame stability
verification ride the array fast path.  The property suite asserts the
two paths agree pair for pair.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import UnstableMatchingError
from repro.matching.arrays import UNRANKED, PreferenceArrays
from repro.matching.preferences import PreferenceTable
from repro.matching.result import Matching

__all__ = ["find_blocking_pairs", "is_stable", "assert_stable", "is_valid_matching"]


def is_valid_matching(table: PreferenceTable | PreferenceArrays, matching: Matching) -> bool:
    """Every matched pair must be mutually acceptable and ids must exist."""
    if isinstance(table, PreferenceArrays):
        return _is_valid_matching_arrays(table, matching)
    for proposer_id, reviewer_id in matching.pairs:
        if proposer_id not in table.proposer_prefs:
            return False
        if reviewer_id not in table.reviewer_prefs:
            return False
        if not table.mutually_acceptable(proposer_id, reviewer_id):
            return False
    return True


def find_blocking_pairs(
    table: PreferenceTable | PreferenceArrays, matching: Matching
) -> list[tuple[int, int]]:
    """All pairs that block ``matching``, sorted for determinism.

    An empty result means the matching is stable in the sense of
    Definition 1 (with dummy partners).
    """
    if isinstance(table, PreferenceArrays):
        return _find_blocking_pairs_arrays(table, matching)
    blocking: list[tuple[int, int]] = []
    for proposer_id, prefs in table.proposer_prefs.items():
        matched_reviewer = matching.reviewer_of(proposer_id)
        if matched_reviewer is None:
            # Unmatched: every acceptable reviewer beats the dummy.
            better_reviewers = prefs
        else:
            rank = table.proposer_rank(proposer_id, matched_reviewer)
            assert rank is not None, "matched pair must be acceptable"
            better_reviewers = prefs[:rank]
        for reviewer_id in better_reviewers:
            holder = matching.proposer_of(reviewer_id)
            if holder is None:
                blocking.append((proposer_id, reviewer_id))
            elif table.reviewer_prefers(reviewer_id, proposer_id, holder):
                blocking.append((proposer_id, reviewer_id))
    return sorted(blocking)


def is_stable(table: PreferenceTable | PreferenceArrays, matching: Matching) -> bool:
    """Whether ``matching`` is valid and has no blocking pair."""
    return is_valid_matching(table, matching) and not find_blocking_pairs(table, matching)


def assert_stable(table: PreferenceTable | PreferenceArrays, matching: Matching) -> None:
    """Raise :class:`UnstableMatchingError` when ``matching`` is not stable."""
    if not is_valid_matching(table, matching):
        raise UnstableMatchingError("matching contains an unacceptable or unknown pair")
    blocking = find_blocking_pairs(table, matching)
    if blocking:
        raise UnstableMatchingError(
            f"matching has {len(blocking)} blocking pair(s), e.g. {blocking[:3]}",
            blocking_pairs=blocking,
        )


# -- array fast path -------------------------------------------------------


def _matched_indices(
    arrays: PreferenceArrays, matching: Matching
) -> tuple[np.ndarray, np.ndarray] | None:
    """Partner *indices* per entity position (-1 = dummy), or ``None``
    when the matching references an unknown id."""
    p_index = {int(pid): p for p, pid in enumerate(arrays.proposer_ids)}
    r_index = {int(rid): r for r, rid in enumerate(arrays.reviewer_ids)}
    rev_of_prop = np.full(arrays.n_proposers, -1, dtype=np.int64)
    prop_of_rev = np.full(arrays.n_reviewers, -1, dtype=np.int64)
    for proposer_id, reviewer_id in matching.pairs:
        p = p_index.get(proposer_id)
        r = r_index.get(reviewer_id)
        if p is None or r is None:
            return None
        rev_of_prop[p] = r
        prop_of_rev[r] = p
    return rev_of_prop, prop_of_rev


def _is_valid_matching_arrays(arrays: PreferenceArrays, matching: Matching) -> bool:
    indices = _matched_indices(arrays, matching)
    if indices is None:
        return False
    rev_of_prop, _ = indices
    matched = np.flatnonzero(rev_of_prop >= 0)
    return bool(
        (arrays.proposer_rank[matched, rev_of_prop[matched]] != UNRANKED).all()
    )


def _find_blocking_pairs_arrays(
    arrays: PreferenceArrays, matching: Matching
) -> list[tuple[int, int]]:
    """Definition 1 vectorized over the proposer-side edge arrays.

    An edge ``(p, r)`` blocks iff its position in ``p``'s list is ahead
    of ``p``'s current partner (the dummy, at :data:`UNRANKED`, for an
    unmatched proposer) *and* its rank in ``r``'s list is ahead of
    ``r``'s current holder (likewise).  Both tests are single int
    comparisons per edge once the matched ranks are gathered.
    """
    indices = _matched_indices(arrays, matching)
    assert indices is not None, "matching references unknown ids"
    rev_of_prop, prop_of_rev = indices

    # Rank of each side's current partner; the dummy ranks at UNRANKED.
    p_partner_rank = np.full(arrays.n_proposers, np.int64(UNRANKED), dtype=np.int64)
    matched_p = np.flatnonzero(rev_of_prop >= 0)
    if len(matched_p):
        ranks = arrays.proposer_rank[matched_p, rev_of_prop[matched_p]]
        assert (ranks != UNRANKED).all(), "matched pair must be acceptable"
        p_partner_rank[matched_p] = ranks
    r_holder_rank = np.full(arrays.n_reviewers, np.int64(UNRANKED), dtype=np.int64)
    matched_r = np.flatnonzero(prop_of_rev >= 0)
    if len(matched_r):
        r_holder_rank[matched_r] = arrays.reviewer_rank[matched_r, prop_of_rev[matched_r]]

    if arrays.n_pairs == 0:
        return []
    p_owner = np.repeat(
        np.arange(arrays.n_proposers, dtype=np.int64), np.diff(arrays.proposer_indptr)
    )
    edge_pos = np.arange(arrays.n_pairs, dtype=np.int64) - arrays.proposer_indptr[p_owner]
    proposer_prefers = edge_pos < p_partner_rank[p_owner]
    reviewer_prefers = arrays.proposer_list_rank < r_holder_rank[arrays.proposer_list]
    blocking = np.flatnonzero(proposer_prefers & reviewer_prefers)
    pairs = zip(
        arrays.proposer_ids[p_owner[blocking]].tolist(),
        arrays.reviewer_ids[arrays.proposer_list[blocking]].tolist(),
    )
    return sorted(pairs)
