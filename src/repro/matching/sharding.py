"""θ-ball component decomposition: spatially sharded stable matching.

**Component-decomposition theorem.**  The non-sharing acceptability
graph of one frame is spatially local: a pair ``(t, r)`` can only be
mutually acceptable when the pickup distance satisfies both thresholds,
``D(t, r^s) ≤ min(θ_pass, τ + α·trip_r)``.  Call that bound the
request's *acceptability radius*.  Partition the frame's taxis and
requests into the connected components of the bipartite graph whose
edges are the pairs within radius (the *θ-ball graph*).  Every
acceptable pair then lies inside one component, so the frame's
preference structure is a disjoint union of per-component structures —
and deferred acceptance never crosses components either: a proposer
only ever proposes down its own list.  Hence the proposer-optimal
stable matching of the frame **is** the union of the proposer-optimal
stable matchings of its components (and likewise for every other
stable matching, the lattice being a product of component lattices).
Entities in a component containing only one side have no acceptable
partner and stay unmatched, exactly as in the global solve.

**Global ordering convention.**  Bit-identity additionally needs ties
to break identically.  Preference lists order partners by
``(score, partner id)`` with *globally unique* ids
(:func:`~repro.matching.preferences.arrays_from_pairs`), and both the
scores and the id tie-breaks are properties of the pair alone — so the
global order restricted to a component is the component's own order,
and solving each component with the standard builders reproduces the
global lists verbatim.  The per-shard matchings therefore union to the
global matching *bit for bit*, which the benchmark and the Hypothesis
suite assert.

**Grid-coarsened components.**  Computing exact θ-ball components would
itself cost the all-pairs distances the decomposition exists to avoid.
Instead, entities are bucketed on a uniform grid
(:func:`~repro.geometry.spatial_index.grid_cells`, the same
floor-division convention as :class:`~repro.geometry.spatial_index.
GridSpatialIndex`) and components are computed over *cells*: a request
cell connects to every taxi cell within its Chebyshev
:func:`~repro.geometry.spatial_index.cell_reach` (``floor(radius/cell)
+ 2``, the object index's slop-absorbing bound).  For any oracle that
dominates L∞ (:func:`~repro.geometry.distance.oracle_dominates_linf`)
this cell graph is a *supergraph* of the θ-ball graph, so its connected
components only ever **merge** true components — never split one — and
the union-of-shards argument above still applies, just with possibly
coarser shards.  Over-merging is therefore always sound; the degenerate
extreme (everything in one shard) is exactly the global solve.  No
cross-shard pair is ever distance-evaluated: candidate generation is
pure integer cell arithmetic plus one sparse connected-components pass
(the array form of grid-bucketed union-find).

Degenerate inputs (a non-dominating oracle, unbounded radii, or
non-finite coordinates) fall back to that single global shard
explicitly, with the reason recorded for telemetry.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.core.config import DispatchConfig
from repro.core.errors import PreferenceError
from repro.core.types import PassengerRequest, Taxi
from repro.geometry.batch import as_point_array
from repro.geometry.distance import DistanceOracle, oracle_dominates_linf
from repro.geometry.spatial_index import cell_reach, grid_cells, pack_cell_keys
from repro.matching.optimality import passenger_optimal, taxi_optimal
from repro.matching.preferences import build_nonsharing_arrays
from repro.matching.result import Matching
from repro.matching.warm_frame import request_trips

__all__ = [
    "ShardDecomposition",
    "Shard",
    "acceptability_radii",
    "default_cell_km",
    "theta_components",
    "frame_decomposition",
    "shard_problems",
    "solve_shard",
    "sharded_nonsharing_match",
]


@dataclass(frozen=True, slots=True)
class ShardDecomposition:
    """Connected-component labels of one frame's θ-ball cell graph.

    Labels are dense ``0..n_shards-1`` integers over the *cell* graph,
    so they depend only on the multiset of occupied cells and the
    per-cell reaches — permuting the input entities permutes the label
    arrays with them but never renumbers a component, which is the
    determinism property the sharded solve inherits.
    """

    taxi_labels: np.ndarray
    """``(T,)`` int64 component label per taxi, in frame order."""
    request_labels: np.ndarray
    """``(R,)`` int64 component label per request, in frame order."""
    n_shards: int
    """Number of components (mixed, taxi-only and request-only alike)."""
    cell_km: float
    """Grid cell edge used for the coarsening (0.0 when degenerate)."""
    degenerate_reason: str | None = None
    """Why the frame fell back to one global shard, if it did."""


@dataclass(frozen=True, slots=True)
class Shard:
    """One solvable sub-frame: row positions into the frame sequences."""

    label: int
    taxi_rows: np.ndarray
    """Ascending row positions of this shard's taxis."""
    request_rows: np.ndarray
    """Ascending row positions of this shard's requests."""

    @property
    def pair_count(self) -> int:
        """The dense pair block this shard scores, ``Tc × Rc``."""
        return int(self.taxi_rows.size) * int(self.request_rows.size)


def acceptability_radii(
    trip_km: np.ndarray, config: DispatchConfig, *, alpha_max: float
) -> np.ndarray:
    """Per-request pickup radius beyond which no taxi can be acceptable.

    An acceptable pair needs ``pick ≤ θ_pass`` and
    ``pick − α_t·trip ≤ τ``, so ``pick ≤ min(θ_pass, τ + α_t·trip)``;
    with ``α_t ≤ alpha_max`` and ``trip ≥ 0`` the returned
    ``min(θ_pass, max(0, τ + alpha_max·trip))`` bounds every taxi's
    condition at once.  A NaN bound (an unmeasurable trip) widens to
    ``θ_pass`` — over-inclusion is always sound here.
    """
    trip = np.asarray(trip_km, dtype=np.float64)
    bound = config.taxi_threshold_km + alpha_max * trip
    bound = np.where(np.isnan(bound), np.inf, bound)
    return np.minimum(config.passenger_threshold_km, np.maximum(0.0, bound))


def default_cell_km(radii: np.ndarray) -> float:
    """A workable coarsening cell: the median positive radius.

    Cells near the typical acceptability radius keep the reach boxes a
    handful of cells wide (cheap candidate enumeration) while still
    separating clusters farther apart than one radius.  Degenerate
    frames (all radii zero) fall back to 1 km; correctness never
    depends on the choice — only shard granularity does.
    """
    positive = radii[radii > 0.0]
    if positive.size == 0 or not bool(np.all(np.isfinite(positive))):
        return 1.0
    return float(np.median(positive))


def theta_components(
    taxi_xy: np.ndarray,
    pick_xy: np.ndarray,
    radii: np.ndarray,
    *,
    cell_km: float,
) -> ShardDecomposition:
    """Label the frame's grid-coarsened θ-ball components.

    ``radii`` must be finite (callers route unbounded frames through the
    explicit single-shard fallback).  Raises ``ValueError`` on
    non-finite or out-of-range coordinates, as :func:`grid_cells` does.

    The sweep groups request cells by their shared Chebyshev reach and,
    per group, either enumerates the ``(2k+1)²`` offset box (joined to
    the sorted taxi-cell keys with ``searchsorted``) or, when the box is
    larger than the taxi-cell population, broadcasts the Chebyshev
    comparison against all occupied taxi cells.  Offset cells outside
    the packable key range may collide with real keys; a collision adds
    a spurious cell edge, which only over-merges — sound by the
    supergraph argument in the module docstring.
    """
    tcells = grid_cells(taxi_xy, cell_km)
    rcells = grid_cells(pick_xy, cell_km)
    tkeys = pack_cell_keys(tcells)
    rkeys = pack_cell_keys(rcells)
    tkeys_u, tidx, tinv = np.unique(tkeys, return_index=True, return_inverse=True)
    rkeys_u, ridx, rinv = np.unique(rkeys, return_index=True, return_inverse=True)
    tc_u = tcells[tidx]
    rc_u = rcells[ridx]
    reach = cell_reach(radii, cell_km)
    per_cell_reach = np.zeros(rkeys_u.size, dtype=np.int64)
    np.maximum.at(per_cell_reach, rinv, reach)

    edge_r: list[np.ndarray] = []
    edge_t: list[np.ndarray] = []
    for k in np.unique(per_cell_reach).tolist():
        group = np.flatnonzero(per_cell_reach == k)
        if (2 * k + 1) ** 2 <= tkeys_u.size:
            span = np.arange(-k, k + 1, dtype=np.int64)
            offsets = np.stack(np.meshgrid(span, span, indexing="ij"), axis=-1).reshape(-1, 2)
            candidates = rc_u[group][:, None, :] + offsets[None, :, :]
            ckeys = pack_cell_keys(candidates.reshape(-1, 2)).reshape(group.size, -1)
            pos = np.searchsorted(tkeys_u, ckeys)
            pos[pos == tkeys_u.size] = 0
            hit = tkeys_u[pos] == ckeys
            gi, _ = np.nonzero(hit)
            edge_r.append(group[gi])
            edge_t.append(pos[hit])
        else:
            dx = np.abs(rc_u[group][:, None, 0] - tc_u[None, :, 0])
            dy = np.abs(rc_u[group][:, None, 1] - tc_u[None, :, 1])
            gi, tj = np.nonzero(np.maximum(dx, dy) <= k)
            edge_r.append(group[gi])
            edge_t.append(tj)

    n_tc = int(tkeys_u.size)
    n_rc = int(rkeys_u.size)
    er = np.concatenate(edge_r) if edge_r else np.empty(0, dtype=np.int64)
    et = np.concatenate(edge_t) if edge_t else np.empty(0, dtype=np.int64)
    n_nodes = n_tc + n_rc
    graph = sp.coo_matrix(
        (np.ones(er.size, dtype=np.int8), (et, n_tc + er)), shape=(n_nodes, n_nodes)
    )
    n_comp, labels = connected_components(graph, directed=False)
    labels = labels.astype(np.int64, copy=False)
    return ShardDecomposition(
        taxi_labels=labels[:n_tc][tinv],
        request_labels=labels[n_tc:][rinv],
        n_shards=int(n_comp),
        cell_km=float(cell_km),
    )


def _single_shard(n_taxis: int, n_requests: int, reason: str) -> ShardDecomposition:
    return ShardDecomposition(
        taxi_labels=np.zeros(n_taxis, dtype=np.int64),
        request_labels=np.zeros(n_requests, dtype=np.int64),
        n_shards=1,
        cell_km=0.0,
        degenerate_reason=reason,
    )


def frame_decomposition(
    taxi_xy: np.ndarray,
    pick_xy: np.ndarray,
    trip_km: np.ndarray,
    oracle: DistanceOracle,
    config: DispatchConfig,
    *,
    alpha_max: float,
    cell_km: float | None = None,
) -> ShardDecomposition:
    """Decompose one frame, degrading to a single global shard whenever
    the grid coarsening would be unsound or unrepresentable.

    ``taxi_xy`` / ``pick_xy`` are ``(T, 2)`` / ``(R, 2)`` km-scaled
    coordinate arrays in frame order; ``trip_km`` the per-request trip
    distances aligned with ``pick_xy``; ``alpha_max`` the largest
    per-driver α in play (radii must cover the choosiest driver);
    ``cell_km`` overrides the :func:`default_cell_km` grid pitch.
    Never raises — every degenerate input becomes a fallback.

    The fallbacks (recorded in ``degenerate_reason``): an oracle not
    known to dominate L∞ (``"oracle"``), an infinite acceptability
    radius (``"unbounded-radius"``, e.g. both thresholds infinite), a
    radius too large for the integer reach (``"radius-overflow"``), and
    coordinates the grid cannot bucket (``"unbucketable-coordinates"``).
    Every fallback is the exact global solve, so degeneracy affects
    performance only.
    """
    n_taxis = int(len(taxi_xy))
    n_requests = int(len(pick_xy))
    if not oracle_dominates_linf(oracle):
        return _single_shard(n_taxis, n_requests, "oracle")
    radii = acceptability_radii(trip_km, config, alpha_max=alpha_max)
    if not bool(np.all(np.isfinite(radii))):
        return _single_shard(n_taxis, n_requests, "unbounded-radius")
    cell = default_cell_km(radii) if cell_km is None else float(cell_km)
    if not bool(np.all(radii < cell * float(2**31))):
        return _single_shard(n_taxis, n_requests, "radius-overflow")
    try:
        return theta_components(taxi_xy, pick_xy, radii, cell_km=cell)
    except ValueError:
        return _single_shard(n_taxis, n_requests, "unbucketable-coordinates")


def shard_problems(decomp: ShardDecomposition, request_ids: np.ndarray) -> list[Shard]:
    """The frame's solvable shards, smallest first.

    Only components holding both sides produce a matching problem — the
    rest stay unmatched by the decomposition theorem.  Shards are
    ordered by ascending dense pair count ``Tc·Rc`` with ties broken by
    the shard's minimum request id, so a budgeted caller finishes the
    many small shards exactly and the one hot shard is what degrades.
    """
    taxi_labels = decomp.taxi_labels
    request_labels = decomp.request_labels
    n = decomp.n_shards
    t_count = np.bincount(taxi_labels, minlength=n)
    r_count = np.bincount(request_labels, minlength=n)
    mixed = np.flatnonzero((t_count > 0) & (r_count > 0))
    if mixed.size == 0:
        return []
    # Stable label sorts keep each shard's rows in ascending frame order.
    t_order = np.argsort(taxi_labels, kind="stable")
    r_order = np.argsort(request_labels, kind="stable")
    t_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(t_count, out=t_indptr[1:])
    r_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(r_count, out=r_indptr[1:])
    min_rid = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(min_rid, request_labels, np.asarray(request_ids, dtype=np.int64))
    pair_counts = t_count * r_count
    order = mixed[np.lexsort((min_rid[mixed], pair_counts[mixed]))]
    return [
        Shard(
            label=int(c),
            taxi_rows=t_order[t_indptr[c] : t_indptr[c + 1]],
            request_rows=r_order[r_indptr[c] : r_indptr[c + 1]],
        )
        for c in order.tolist()
    ]


def solve_shard(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig,
    *,
    optimize_for: str = "passenger",
    alpha_by_taxi: Mapping[int, float] | None = None,
    trip_km: np.ndarray | None = None,
) -> Matching:
    """Solve one shard with the standard cold builders.

    The shard never sees a taxi × request block beyond its own, and the
    builders' ``(score, global id)`` ordering makes its lists the global
    lists restricted to the component (the ordering convention above).
    """
    prefs = build_nonsharing_arrays(
        taxis,
        requests,
        oracle,
        config,
        alpha_by_taxi=alpha_by_taxi,
        trip_km=trip_km,
    )
    if optimize_for == "taxi":
        return taxi_optimal(prefs)
    return passenger_optimal(prefs)


def _solve_shard_payload(
    payload: tuple[
        tuple[Taxi, ...],
        tuple[PassengerRequest, ...],
        DistanceOracle,
        DispatchConfig,
        str,
        dict[int, float] | None,
        np.ndarray | None,
    ],
) -> frozenset[tuple[int, int]]:
    """Worker entry point for ``shard_workers``: one picklable shard in,
    its matched id pairs out.  Module-level so process pools can import
    it by qualified name."""
    taxis, requests, oracle, config, optimize_for, alpha_by_taxi, trip_km = payload
    return solve_shard(
        taxis,
        requests,
        oracle,
        config,
        optimize_for=optimize_for,
        alpha_by_taxi=alpha_by_taxi,
        trip_km=trip_km,
    ).pairs


def _check_global_ids(
    taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
) -> tuple[np.ndarray, np.ndarray]:
    """Frame-order id arrays, validated unique across the *whole* frame.

    Per-shard builders can only check uniqueness inside their shard;
    without this frame-level check a duplicate id split across two
    shards would silently merge two entities the global builder rejects.
    """
    taxi_ids = np.fromiter((t.taxi_id for t in taxis), dtype=np.int64, count=len(taxis))
    request_ids = np.fromiter(
        (r.request_id for r in requests), dtype=np.int64, count=len(requests)
    )
    if np.unique(taxi_ids).size != taxi_ids.size:
        raise PreferenceError("duplicate taxi ids")
    if np.unique(request_ids).size != request_ids.size:
        raise PreferenceError("duplicate request ids")
    return taxi_ids, request_ids


def sharded_nonsharing_match(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig | None = None,
    *,
    optimize_for: str = "passenger",
    alpha_by_taxi: Mapping[int, float] | None = None,
    trip_km: np.ndarray | None = None,
    cell_km: float | None = None,
) -> tuple[Matching, ShardDecomposition]:
    """One frame solved shard by shard — bit-identical to the global DA.

    This is the serial reference composition (decompose → per-shard
    build → per-shard deferred acceptance → union); the dispatcher's
    sharded path adds budget degradation, process workers and telemetry
    around the same pieces.  Returns the matching and the decomposition
    so callers can inspect shard structure.

    Raises :class:`~repro.core.errors.PreferenceError` on duplicate ids
    on either side (the same guard every cold builder applies); the
    per-shard solves propagate any builder error unchanged, so this
    composition never fails in a way the global solve would not.
    """
    config = config if config is not None else DispatchConfig()
    _, request_ids = _check_global_ids(taxis, requests)
    if not taxis or not requests:
        return Matching({}), _single_shard(len(taxis), len(requests), "empty-side")
    trip = (
        np.asarray(trip_km, dtype=np.float64)
        if trip_km is not None
        else request_trips(requests, oracle)
    )
    alpha_max = float(config.alpha)
    if alpha_by_taxi:
        alpha_max = max(alpha_max, max(float(a) for a in alpha_by_taxi.values()))
    taxi_xy = as_point_array([t.location for t in taxis], check_finite=False)
    pick_xy = as_point_array([r.pickup for r in requests], check_finite=False)
    decomp = frame_decomposition(
        taxi_xy, pick_xy, trip, oracle, config, alpha_max=alpha_max, cell_km=cell_km
    )
    pairs: dict[int, int] = {}
    for shard in shard_problems(decomp, request_ids):
        matched = solve_shard(
            [taxis[i] for i in shard.taxi_rows.tolist()],
            [requests[j] for j in shard.request_rows.tolist()],
            oracle,
            config,
            optimize_for=optimize_for,
            alpha_by_taxi=alpha_by_taxi,
            trip_km=trip[shard.request_rows],
        )
        pairs.update(matched.pairs)
    return Matching(pairs), decomp
