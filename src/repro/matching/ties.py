"""Stable matching with ties and incomplete lists (SMTI).

The paper's related-work section leans on two facts (its refs [14],
[15]): with both ties and incomplete lists, *maximum* weakly stable
matching is NP-hard, and Király gave a linear-time local algorithm with
a 3/2 approximation guarantee.  Ties are not hypothetical here —
quantized distances (fare meters, grid snapping, Manhattan metrics)
produce them routinely, and how they are broken changes how many
passengers get served.

This module provides

* :class:`TiedPreferenceTable` — strict proposer lists, reviewer lists
  as tie groups;
* :func:`weakly_stable` / :func:`find_weak_blocking_pairs` — weak
  stability (no pair *strictly* preferring each other);
* :func:`kiraly_max_stable` — Király's promotion algorithm (ties on
  the reviewer side), which matches at least 2/3 of the optimum;
* :func:`max_weakly_stable_brute_force` — exponential ground truth for
  the tests;
* :func:`build_tied_nonsharing_table` — the paper's preference model
  with scores quantized to a resolution, which is what actually
  produces ties in a dispatch setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.config import DispatchConfig
from repro.core.errors import PreferenceError
from repro.core.types import PassengerRequest, Taxi
from repro.geometry.distance import DistanceOracle
from repro.matching.result import Matching

__all__ = [
    "TiedPreferenceTable",
    "find_weak_blocking_pairs",
    "weakly_stable",
    "kiraly_max_stable",
    "max_weakly_stable_brute_force",
    "build_tied_nonsharing_table",
]


@dataclass(frozen=True)
class TiedPreferenceTable:
    """Strict proposer lists; reviewer lists as ordered tie groups.

    ``reviewer_prefs[r]`` is a tuple of tie groups, best group first;
    proposers inside one group are equally preferred.  A pair must be
    acceptable to both sides or to neither.
    """

    proposer_prefs: dict[int, tuple[int, ...]]
    reviewer_prefs: dict[int, tuple[tuple[int, ...], ...]]
    _reviewer_rank: dict[int, dict[int, int]] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        reviewer_rank: dict[int, dict[int, int]] = {}
        for reviewer, groups in self.reviewer_prefs.items():
            ranks: dict[int, int] = {}
            for level, group in enumerate(groups):
                for proposer in group:
                    if proposer in ranks:
                        raise PreferenceError(
                            f"reviewer {reviewer} lists proposer {proposer} twice"
                        )
                    ranks[proposer] = level
            reviewer_rank[reviewer] = ranks
        object.__setattr__(self, "_reviewer_rank", reviewer_rank)

        pairs_from_proposers = {
            (p, r) for p, prefs in self.proposer_prefs.items() for r in prefs
        }
        pairs_from_reviewers = {
            (p, r) for r, ranks in reviewer_rank.items() for p in ranks
        }
        if pairs_from_proposers != pairs_from_reviewers:
            diff = pairs_from_proposers ^ pairs_from_reviewers
            raise PreferenceError(f"tied table not mutually consistent: {sorted(diff)[:5]}")
        for p, prefs in self.proposer_prefs.items():
            if len(set(prefs)) != len(prefs):
                raise PreferenceError(f"proposer {p} has duplicate entries")

    def proposer_rank(self, proposer: int, reviewer: int) -> int | None:
        prefs = self.proposer_prefs.get(proposer, ())
        try:
            return prefs.index(reviewer)
        except ValueError:
            return None

    def reviewer_tie_level(self, reviewer: int, proposer: int) -> int | None:
        return self._reviewer_rank.get(reviewer, {}).get(proposer)


def find_weak_blocking_pairs(table: TiedPreferenceTable, matching: Matching) -> list[tuple[int, int]]:
    """Pairs where both sides *strictly* prefer each other (weak stability)."""
    blocking: list[tuple[int, int]] = []
    for proposer, prefs in table.proposer_prefs.items():
        current = matching.reviewer_of(proposer)
        current_rank = None if current is None else table.proposer_rank(proposer, current)
        for rank, reviewer in enumerate(prefs):
            if current_rank is not None and rank >= current_rank:
                break  # not strictly better for the proposer
            holder = matching.proposer_of(reviewer)
            if holder is None:
                blocking.append((proposer, reviewer))
                continue
            mine = table.reviewer_tie_level(reviewer, proposer)
            theirs = table.reviewer_tie_level(reviewer, holder)
            assert mine is not None and theirs is not None
            if mine < theirs:
                blocking.append((proposer, reviewer))
    return sorted(blocking)


def weakly_stable(table: TiedPreferenceTable, matching: Matching) -> bool:
    for proposer, reviewer in matching.pairs:
        if table.proposer_rank(proposer, reviewer) is None:
            return False
    return not find_weak_blocking_pairs(table, matching)


def kiraly_max_stable(table: TiedPreferenceTable) -> Matching:
    """Király's promotion algorithm (3/2-approximate max weakly stable).

    Proposers run down their strict lists.  A reviewer holding a
    proposal prefers a strictly better tie level; *within* a tie it
    prefers a promoted proposer over an unpromoted one.  A proposer
    exhausting its list unmatched gets promoted once and retries from
    the top; exhausting it promoted means staying unmatched.  The
    result is weakly stable and matches ≥ 2/3 of the maximum.
    """
    next_choice = {p: 0 for p in table.proposer_prefs}
    promoted = {p: False for p in table.proposer_prefs}
    holder: dict[int, int] = {}
    engaged: dict[int, int] = {}

    stack = sorted(table.proposer_prefs, reverse=True)
    while stack:
        proposer = stack.pop()
        prefs = table.proposer_prefs[proposer]
        placed = False
        while next_choice[proposer] < len(prefs):
            reviewer = prefs[next_choice[proposer]]
            next_choice[proposer] += 1
            current = holder.get(reviewer)
            if current is None:
                holder[reviewer] = proposer
                engaged[proposer] = reviewer
                placed = True
                break
            mine = table.reviewer_tie_level(reviewer, proposer)
            theirs = table.reviewer_tie_level(reviewer, current)
            assert mine is not None and theirs is not None
            accepts = mine < theirs or (
                mine == theirs and promoted[proposer] and not promoted[current]
            )
            if accepts:
                holder[reviewer] = proposer
                engaged[proposer] = reviewer
                del engaged[current]
                stack.append(current)
                placed = True
                break
        if not placed:
            if not promoted[proposer]:
                promoted[proposer] = True
                next_choice[proposer] = 0
                stack.append(proposer)
            # else: stays unmatched for good.
    return Matching(engaged)


def max_weakly_stable_brute_force(table: TiedPreferenceTable) -> Matching:
    """Largest weakly stable matching by exhaustive search (tiny inputs)."""
    proposers = sorted(table.proposer_prefs)
    best: list[Matching] = [Matching({})]

    def extend(index: int, taken: dict[int, int]) -> None:
        if index == len(proposers):
            candidate = Matching(dict(taken))
            if weakly_stable(table, candidate) and candidate.size > best[0].size:
                best[0] = candidate
            return
        proposer = proposers[index]
        extend(index + 1, taken)
        used = set(taken.values())
        for reviewer in table.proposer_prefs[proposer]:
            if reviewer in used:
                continue
            taken[proposer] = reviewer
            extend(index + 1, taken)
            del taken[proposer]

    extend(0, {})
    return best[0]


def build_tied_nonsharing_table(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig | None = None,
    *,
    resolution_km: float = 0.1,
) -> TiedPreferenceTable:
    """The paper's preference model with driver scores quantized to
    ``resolution_km``, producing reviewer-side ties.

    Passenger lists stay strict (quantized score, ties broken by taxi
    id) because Király's guarantee needs one strict side; taxi lists
    keep genuine tie groups.
    """
    if resolution_km <= 0.0:
        raise PreferenceError(f"resolution must be positive, got {resolution_km}")
    config = config if config is not None else DispatchConfig()

    def bucket(value: float) -> int:
        return round(value / resolution_km)

    proposer_entries: dict[int, list[tuple[int, int]]] = {r.request_id: [] for r in requests}
    reviewer_buckets: dict[int, dict[int, list[int]]] = {t.taxi_id: {} for t in taxis}
    for request in requests:
        trip = request.trip_distance(oracle)
        for taxi in taxis:
            if not taxi.can_carry(request):
                continue
            pickup = oracle.distance(taxi.location, request.pickup)
            if pickup > config.passenger_threshold_km:
                continue
            driver = pickup - config.alpha * trip
            if driver > config.taxi_threshold_km:
                continue
            proposer_entries[request.request_id].append((bucket(pickup), taxi.taxi_id))
            reviewer_buckets[taxi.taxi_id].setdefault(bucket(driver), []).append(
                request.request_id
            )

    proposer_prefs = {
        rid: tuple(t for _, t in sorted(entries))
        for rid, entries in proposer_entries.items()
    }
    reviewer_prefs = {
        tid: tuple(tuple(sorted(buckets[key])) for key in sorted(buckets))
        for tid, buckets in reviewer_buckets.items()
    }
    return TiedPreferenceTable(proposer_prefs=proposer_prefs, reviewer_prefs=reviewer_prefs)
