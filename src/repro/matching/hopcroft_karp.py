"""Hopcroft–Karp maximum bipartite matching.

Self-contained O(E·√V) implementation used by the minimax matcher
(feasibility checks under a cost threshold) and by tests as an
independent cardinality oracle.  Vertices are 0-based integers on each
side; the graph is an adjacency list from left to right.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

__all__ = ["hopcroft_karp", "maximum_matching_size"]

#: BFS layer label for vertices the current phase has not reached.
#: Layers are integer level counts, not float distances, so the code
#: compares them exactly without touching float equality (REP006).
_UNREACHED = -1


def hopcroft_karp(n_left: int, n_right: int, adjacency: Sequence[Sequence[int]]) -> dict[int, int]:
    """Maximum matching as a left → right dict.

    ``adjacency[u]`` lists the right vertices adjacent to left vertex
    ``u``; indices out of range raise ``IndexError`` eagerly.
    """
    if len(adjacency) != n_left:
        raise ValueError(f"adjacency has {len(adjacency)} rows for {n_left} left vertices")
    for u, nbrs in enumerate(adjacency):
        for v in nbrs:
            if not 0 <= v < n_right:
                raise IndexError(f"right vertex {v} out of range in row {u}")

    match_left: list[int] = [-1] * n_left
    match_right: list[int] = [-1] * n_right
    layer: list[int] = [0] * n_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(n_left):
            if match_left[u] == -1:
                layer[u] = 0
                queue.append(u)
            else:
                layer[u] = _UNREACHED
        reachable_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    reachable_free = True
                elif layer[w] == _UNREACHED:
                    layer[w] = layer[u] + 1
                    queue.append(w)
        return reachable_free

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_right[v]
            if w == -1 or (layer[w] == layer[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        layer[u] = _UNREACHED
        return False

    while bfs():
        for u in range(n_left):
            if match_left[u] == -1:
                dfs(u)
    return {u: v for u, v in enumerate(match_left) if v != -1}


def maximum_matching_size(n_left: int, n_right: int, adjacency: Sequence[Sequence[int]]) -> int:
    """Cardinality of a maximum matching."""
    return len(hopcroft_karp(n_left, n_right, adjacency))
