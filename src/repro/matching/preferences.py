"""Preference tables with dummy partners.

Section IV-A of the paper defines two score functions (smaller is
better):

* passenger ``r_j`` scores taxi ``t_i`` as ``D(t_i, r_j^s)``;
* driver ``t_i`` scores request ``r_j`` as
  ``D(t_i, r_j^s) − α·D(r_j^s, r_j^d)``.

Each side's preference order also contains exactly one **dummy entry**
(Theorem 1): partners scoring beyond a threshold fall *behind* the dummy
and are therefore unacceptable — proposing to them or accepting them can
never be part of a stable matching.  A taxi without enough seats and the
oversized request "are put to the end of the preference order of each
other", i.e. the pair is mutually unacceptable.

:class:`PreferenceTable` is the role-neutral structure every matching
algorithm in this package consumes: *proposers* (passenger requests, or
packed ride groups in the sharing case) and *reviewers* (taxis), each
with an ordered list of acceptable partners.  A pair appears on one
side's list iff it appears on the other's, which keeps the stability
definition symmetric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.core.config import DispatchConfig
from repro.core.errors import PreferenceError
from repro.core.types import PassengerRequest, Taxi
from repro.geometry.distance import DistanceOracle

__all__ = [
    "PreferenceTable",
    "build_nonsharing_table",
    "passenger_score",
    "taxi_score",
]


def passenger_score(taxi: Taxi, request: PassengerRequest, oracle: DistanceOracle) -> float:
    """``D(t_i, r_j^s)``: the passenger dissatisfaction of this pairing."""
    return oracle.distance(taxi.location, request.pickup)


def taxi_score(
    taxi: Taxi, request: PassengerRequest, oracle: DistanceOracle, alpha: float
) -> float:
    """``D(t_i, r_j^s) − α·D(r_j^s, r_j^d)``: the taxi dissatisfaction."""
    return oracle.distance(taxi.location, request.pickup) - alpha * request.trip_distance(oracle)


@dataclass(frozen=True)
class PreferenceTable:
    """Mutually consistent preference lists over acceptable partners.

    Attributes
    ----------
    proposer_prefs:
        For each proposer id, the acceptable reviewer ids in strictly
        decreasing preference (best first).  The implicit dummy sits at
        the end of every list.
    reviewer_prefs:
        Symmetric structure for reviewers.
    proposer_scores / reviewer_scores:
        Optional raw scores (smaller = better) behind the orders, keyed
        by ``(proposer_id, reviewer_id)``; kept for metrics and for
        deterministic re-ranking in the sharing pipeline.
    """

    proposer_prefs: dict[int, tuple[int, ...]]
    reviewer_prefs: dict[int, tuple[int, ...]]
    proposer_scores: dict[tuple[int, int], float] = field(default_factory=dict)
    reviewer_scores: dict[tuple[int, int], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        pairs_from_proposers = {
            (p, r) for p, prefs in self.proposer_prefs.items() for r in prefs
        }
        pairs_from_reviewers = {
            (p, r) for r, prefs in self.reviewer_prefs.items() for p in prefs
        }
        if pairs_from_proposers != pairs_from_reviewers:
            diff = pairs_from_proposers ^ pairs_from_reviewers
            raise PreferenceError(f"preference lists are not mutually consistent: {sorted(diff)[:5]}")
        for p, prefs in self.proposer_prefs.items():
            if len(set(prefs)) != len(prefs):
                raise PreferenceError(f"proposer {p} has duplicate entries")
        for r, prefs in self.reviewer_prefs.items():
            if len(set(prefs)) != len(prefs):
                raise PreferenceError(f"reviewer {r} has duplicate entries")

    # -- lookups ---------------------------------------------------------

    @property
    def proposer_ids(self) -> tuple[int, ...]:
        return tuple(self.proposer_prefs)

    @property
    def reviewer_ids(self) -> tuple[int, ...]:
        return tuple(self.reviewer_prefs)

    def proposer_rank(self, proposer_id: int, reviewer_id: int) -> int | None:
        """Rank of ``reviewer_id`` in the proposer's list; ``None`` if
        unacceptable (i.e. behind the dummy)."""
        ranks = self._proposer_ranks().get(proposer_id, {})
        return ranks.get(reviewer_id)

    def reviewer_rank(self, reviewer_id: int, proposer_id: int) -> int | None:
        ranks = self._reviewer_ranks().get(reviewer_id, {})
        return ranks.get(proposer_id)

    def mutually_acceptable(self, proposer_id: int, reviewer_id: int) -> bool:
        return self.proposer_rank(proposer_id, reviewer_id) is not None

    def proposer_prefers(self, proposer_id: int, reviewer_a: int, reviewer_b: int) -> bool:
        """Whether the proposer strictly prefers ``reviewer_a`` over ``reviewer_b``."""
        rank_a = self.proposer_rank(proposer_id, reviewer_a)
        rank_b = self.proposer_rank(proposer_id, reviewer_b)
        if rank_a is None:
            return False
        if rank_b is None:
            return True
        return rank_a < rank_b

    def reviewer_prefers(self, reviewer_id: int, proposer_a: int, proposer_b: int) -> bool:
        rank_a = self.reviewer_rank(reviewer_id, proposer_a)
        rank_b = self.reviewer_rank(reviewer_id, proposer_b)
        if rank_a is None:
            return False
        if rank_b is None:
            return True
        return rank_a < rank_b

    def reversed(self) -> "PreferenceTable":
        """The same market with roles swapped (taxis propose).

        Used for the taxi-optimal fast path: deferred acceptance on the
        reversed table is reviewer-optimal for the original table.
        """
        return PreferenceTable(
            proposer_prefs=dict(self.reviewer_prefs),
            reviewer_prefs=dict(self.proposer_prefs),
            proposer_scores={(r, p): s for (p, r), s in self.reviewer_scores.items()} if self.reviewer_scores else {},
            reviewer_scores={(r, p): s for (p, r), s in self.proposer_scores.items()} if self.proposer_scores else {},
        )

    # Rank maps are derived lazily and cached on the instance; the table
    # itself is frozen so the caches are stored via object.__setattr__.

    def _proposer_ranks(self) -> dict[int, dict[int, int]]:
        cached = getattr(self, "_proposer_rank_cache", None)
        if cached is None:
            cached = {
                p: {r: k for k, r in enumerate(prefs)} for p, prefs in self.proposer_prefs.items()
            }
            object.__setattr__(self, "_proposer_rank_cache", cached)
        return cached

    def _reviewer_ranks(self) -> dict[int, dict[int, int]]:
        cached = getattr(self, "_reviewer_rank_cache", None)
        if cached is None:
            cached = {
                r: {p: k for k, p in enumerate(prefs)} for r, prefs in self.reviewer_prefs.items()
            }
            object.__setattr__(self, "_reviewer_rank_cache", cached)
        return cached


def build_nonsharing_table(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig | None = None,
    *,
    alpha_by_taxi: Mapping[int, float] | None = None,
) -> PreferenceTable:
    """The paper's non-sharing preference orders (Section IV-A).

    Requests are proposers, taxis are reviewers.  A pair is kept (i.e.
    acceptable to both) when

    * the taxi has enough seats for the whole party,
    * the pickup distance is within ``config.passenger_threshold_km``, and
    * the driver score is within ``config.taxi_threshold_km``.

    Orders are deterministic: ties in score break by partner id.

    ``alpha_by_taxi`` optionally assigns each driver a personal fare
    coefficient (missing ids fall back to ``config.alpha``).  This is an
    extension beyond the paper: with one shared α the two sides' scores
    for a pair differ only by a request-side term, every trading cycle's
    inequalities cancel, and the stable matching is **unique** (so
    NSTD-P ≡ NSTD-T).  Heterogeneous drivers break that alignment and
    make the stable lattice — and the company's Algorithm-2 choice —
    meaningful.
    """
    config = config if config is not None else DispatchConfig()
    _check_unique_ids(taxis, requests)
    alphas = {
        taxi.taxi_id: (alpha_by_taxi or {}).get(taxi.taxi_id, config.alpha) for taxi in taxis
    }
    for taxi_id, alpha in alphas.items():
        if alpha < 0.0:
            raise PreferenceError(f"taxi {taxi_id} has negative alpha {alpha}")

    proposer_scores: dict[tuple[int, int], float] = {}
    reviewer_scores: dict[tuple[int, int], float] = {}
    acceptable_by_request: dict[int, list[tuple[float, int]]] = {r.request_id: [] for r in requests}
    acceptable_by_taxi: dict[int, list[tuple[float, int]]] = {t.taxi_id: [] for t in taxis}

    for request in requests:
        trip = request.trip_distance(oracle)
        for taxi in taxis:
            if not taxi.can_carry(request):
                continue
            pickup_km = oracle.distance(taxi.location, request.pickup)
            if pickup_km > config.passenger_threshold_km:
                continue
            driver = pickup_km - alphas[taxi.taxi_id] * trip
            if driver > config.taxi_threshold_km:
                continue
            proposer_scores[(request.request_id, taxi.taxi_id)] = pickup_km
            reviewer_scores[(request.request_id, taxi.taxi_id)] = driver
            acceptable_by_request[request.request_id].append((pickup_km, taxi.taxi_id))
            acceptable_by_taxi[taxi.taxi_id].append((driver, request.request_id))

    proposer_prefs = {
        rid: tuple(t for _, t in sorted(pairs)) for rid, pairs in acceptable_by_request.items()
    }
    reviewer_prefs = {
        tid: tuple(r for _, r in sorted(pairs)) for tid, pairs in acceptable_by_taxi.items()
    }
    return PreferenceTable(
        proposer_prefs=proposer_prefs,
        reviewer_prefs=reviewer_prefs,
        proposer_scores=proposer_scores,
        reviewer_scores=reviewer_scores,
    )


def _check_unique_ids(taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]) -> None:
    taxi_ids = [t.taxi_id for t in taxis]
    request_ids = [r.request_id for r in requests]
    if len(set(taxi_ids)) != len(taxi_ids):
        raise PreferenceError("duplicate taxi ids")
    if len(set(request_ids)) != len(request_ids):
        raise PreferenceError("duplicate request ids")
