"""Preference tables with dummy partners.

Section IV-A of the paper defines two score functions (smaller is
better):

* passenger ``r_j`` scores taxi ``t_i`` as ``D(t_i, r_j^s)``;
* driver ``t_i`` scores request ``r_j`` as
  ``D(t_i, r_j^s) − α·D(r_j^s, r_j^d)``.

Each side's preference order also contains exactly one **dummy entry**
(Theorem 1): partners scoring beyond a threshold fall *behind* the dummy
and are therefore unacceptable — proposing to them or accepting them can
never be part of a stable matching.  A taxi without enough seats and the
oversized request "are put to the end of the preference order of each
other", i.e. the pair is mutually unacceptable.

:class:`PreferenceTable` is the role-neutral structure every matching
algorithm in this package consumes: *proposers* (passenger requests, or
packed ride groups in the sharing case) and *reviewers* (taxis), each
with an ordered list of acceptable partners.  A pair appears on one
side's list iff it appears on the other's, which keeps the stability
definition symmetric.

**Construction engines.**  :func:`build_nonsharing_table` is the frame
hot path (O(|T|·|R|) pairs every frame) and runs on the batched
distance kernels of :mod:`repro.geometry.batch`:

* ``dense`` — one vectorized score matrix, threshold masks, and a
  single global lexsort per side;
* ``pruned`` — a uniform-grid candidate query per request restricts
  scoring to taxis within ``passenger_threshold_km`` (sound because the
  grid query is inclusive at the radius and the passenger threshold is
  the only distance-based acceptability cut on the passenger side), so
  the cost tracks the acceptable-pair count instead of |T|·|R|;
* ``scalar`` — the retained double-loop reference implementation
  (:func:`build_nonsharing_table_reference`).

All engines produce **identical** tables — same preference orders, same
scores, same deterministic id tie-breaks — which the property suite
asserts pair-for-pair against the scalar reference.  Pairs whose score
would be non-finite (a disconnected road-network pair, an infinite trip)
are unacceptable under every engine.
"""

from __future__ import annotations

import math
from dataclasses import InitVar, dataclass, field
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import DispatchConfig
from repro.core.errors import PreferenceError
from repro.core.types import PassengerRequest, Taxi
from repro.geometry.distance import DistanceOracle, oracle_dominates_linf
from repro.geometry.batch import (
    as_point_array,
    batch_kernels_exact,
    oracle_paired,
    oracle_pairwise,
)
from repro.geometry.spatial_index import GridSpatialIndex, suggest_cell_size

if TYPE_CHECKING:  # annotation-only: repro.matching.arrays imports this module
    from repro.matching.arrays import PreferenceArrays

__all__ = [
    "PreferenceTable",
    "build_nonsharing_table",
    "build_nonsharing_table_reference",
    "build_nonsharing_arrays",
    "arrays_from_pairs",
    "passenger_score",
    "taxi_score",
]

#: Below this many candidate pairs the dense engine wins outright: the
#: full vectorized distance matrix is cheaper than the per-request
#: Python grid gather (measured crossover on paper-scale frames — at
#: 700×700 the dense kernel costs ~5 ms while grid gathering costs
#: ~15 ms).  Grid pruning pays off once the dense matrix and its mask
#: temporaries stop fitting comfortably in cache/memory.
_PRUNE_MIN_PAIRS = 4_000_000


def passenger_score(taxi: Taxi, request: PassengerRequest, oracle: DistanceOracle) -> float:
    """``D(t_i, r_j^s)``: the passenger dissatisfaction of this pairing."""
    return oracle.distance(taxi.location, request.pickup)


def taxi_score(
    taxi: Taxi, request: PassengerRequest, oracle: DistanceOracle, alpha: float
) -> float:
    """``D(t_i, r_j^s) − α·D(r_j^s, r_j^d)``: the taxi dissatisfaction."""
    return oracle.distance(taxi.location, request.pickup) - alpha * request.trip_distance(oracle)


@dataclass(frozen=True)
class PreferenceTable:
    """Mutually consistent preference lists over acceptable partners.

    Attributes
    ----------
    proposer_prefs:
        For each proposer id, the acceptable reviewer ids in strictly
        decreasing preference (best first).  The implicit dummy sits at
        the end of every list.
    reviewer_prefs:
        Symmetric structure for reviewers.
    proposer_scores / reviewer_scores:
        Optional raw scores (smaller = better) behind the orders, keyed
        by ``(proposer_id, reviewer_id)``; kept for metrics and for
        deterministic re-ranking in the sharing pipeline.
    validate:
        Whether to run the O(E) mutual-consistency check on
        construction.  On by default so hand-built tables (tests,
        notebooks) fail fast; the trusted in-package builders pass
        ``False`` because their tables are consistent by construction
        and the check would otherwise run on every simulated frame.
    """

    proposer_prefs: dict[int, tuple[int, ...]]
    reviewer_prefs: dict[int, tuple[int, ...]]
    proposer_scores: dict[tuple[int, int], float] = field(default_factory=dict)
    reviewer_scores: dict[tuple[int, int], float] = field(default_factory=dict)
    validate: InitVar[bool] = True

    def __post_init__(self, validate: bool = True) -> None:
        if not validate:
            return
        pairs_from_proposers = {
            (p, r) for p, prefs in self.proposer_prefs.items() for r in prefs
        }
        pairs_from_reviewers = {
            (p, r) for r, prefs in self.reviewer_prefs.items() for p in prefs
        }
        if pairs_from_proposers != pairs_from_reviewers:
            diff = pairs_from_proposers ^ pairs_from_reviewers
            raise PreferenceError(f"preference lists are not mutually consistent: {sorted(diff)[:5]}")
        for p, prefs in self.proposer_prefs.items():
            if len(set(prefs)) != len(prefs):
                raise PreferenceError(f"proposer {p} has duplicate entries")
        for r, prefs in self.reviewer_prefs.items():
            if len(set(prefs)) != len(prefs):
                raise PreferenceError(f"reviewer {r} has duplicate entries")

    # -- lookups ---------------------------------------------------------

    @property
    def proposer_ids(self) -> tuple[int, ...]:
        """Proposer ids in table insertion order."""
        return tuple(self.proposer_prefs)

    @property
    def reviewer_ids(self) -> tuple[int, ...]:
        """Reviewer ids in table insertion order."""
        return tuple(self.reviewer_prefs)

    def proposer_rank(self, proposer_id: int, reviewer_id: int) -> int | None:
        """Rank of ``reviewer_id`` in the proposer's list; ``None`` if
        unacceptable (i.e. behind the dummy)."""
        ranks = self._proposer_ranks().get(proposer_id, {})
        return ranks.get(reviewer_id)

    def reviewer_rank(self, reviewer_id: int, proposer_id: int) -> int | None:
        """Rank of ``proposer_id`` in the reviewer's list; ``None`` if
        unacceptable."""
        ranks = self._reviewer_ranks().get(reviewer_id, {})
        return ranks.get(proposer_id)

    def mutually_acceptable(self, proposer_id: int, reviewer_id: int) -> bool:
        """Whether each side lists the other (dummy beaten both ways)."""
        return self.proposer_rank(proposer_id, reviewer_id) is not None

    def proposer_prefers(self, proposer_id: int, reviewer_a: int, reviewer_b: int) -> bool:
        """Whether the proposer strictly prefers ``reviewer_a`` over ``reviewer_b``."""
        rank_a = self.proposer_rank(proposer_id, reviewer_a)
        rank_b = self.proposer_rank(proposer_id, reviewer_b)
        if rank_a is None:
            return False
        if rank_b is None:
            return True
        return rank_a < rank_b

    def reviewer_prefers(self, reviewer_id: int, proposer_a: int, proposer_b: int) -> bool:
        """Whether the reviewer strictly prefers ``proposer_a`` over
        ``proposer_b`` (an unlisted proposer never wins)."""
        rank_a = self.reviewer_rank(reviewer_id, proposer_a)
        rank_b = self.reviewer_rank(reviewer_id, proposer_b)
        if rank_a is None:
            return False
        if rank_b is None:
            return True
        return rank_a < rank_b

    def reversed(self) -> "PreferenceTable":
        """The same market with roles swapped (taxis propose).

        Used for the taxi-optimal fast path: deferred acceptance on the
        reversed table is reviewer-optimal for the original table.  The
        reversed table is consistent by construction (no re-validation)
        and inherits this table's rank caches with roles swapped instead
        of recomputing them.
        """
        table = PreferenceTable(
            proposer_prefs=dict(self.reviewer_prefs),
            reviewer_prefs=dict(self.proposer_prefs),
            proposer_scores={(r, p): s for (p, r), s in self.reviewer_scores.items()} if self.reviewer_scores else {},
            reviewer_scores={(r, p): s for (p, r), s in self.proposer_scores.items()} if self.proposer_scores else {},
            validate=False,
        )
        object.__setattr__(table, "_proposer_rank_cache", self._reviewer_ranks())
        object.__setattr__(table, "_reviewer_rank_cache", self._proposer_ranks())
        return table

    # Rank maps are derived lazily and cached on the instance; the table
    # itself is frozen so the caches are stored via object.__setattr__.

    def _proposer_ranks(self) -> dict[int, dict[int, int]]:
        cached = getattr(self, "_proposer_rank_cache", None)
        if cached is None:
            cached = {
                p: {r: k for k, r in enumerate(prefs)} for p, prefs in self.proposer_prefs.items()
            }
            object.__setattr__(self, "_proposer_rank_cache", cached)
        return cached

    def _reviewer_ranks(self) -> dict[int, dict[int, int]]:
        cached = getattr(self, "_reviewer_rank_cache", None)
        if cached is None:
            cached = {
                r: {p: k for k, p in enumerate(prefs)} for r, prefs in self.reviewer_prefs.items()
            }
            object.__setattr__(self, "_reviewer_rank_cache", cached)
        return cached


def build_nonsharing_table(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig | None = None,
    *,
    alpha_by_taxi: Mapping[int, float] | None = None,
    engine: str = "auto",
    pickup_matrix: np.ndarray | None = None,
    trip_km: np.ndarray | None = None,
) -> PreferenceTable:
    """The paper's non-sharing preference orders (Section IV-A).

    Requests are proposers, taxis are reviewers.  A pair is kept (i.e.
    acceptable to both) when

    * the taxi has enough seats for the whole party,
    * the pickup distance is within ``config.passenger_threshold_km``,
    * the driver score is within ``config.taxi_threshold_km``, and
    * both scores are finite.

    Orders are deterministic: ties in score break by partner id.

    ``alpha_by_taxi`` optionally assigns each driver a personal fare
    coefficient (missing ids fall back to ``config.alpha``).  This is an
    extension beyond the paper: with one shared α the two sides' scores
    for a pair differ only by a request-side term, every trading cycle's
    inequalities cancel, and the stable matching is **unique** (so
    NSTD-P ≡ NSTD-T).  Heterogeneous drivers break that alignment and
    make the stable lattice — and the company's Algorithm-2 choice —
    meaningful.

    ``engine`` selects the construction strategy: ``"auto"`` (pruned
    when the passenger threshold is finite, the oracle admits grid
    pruning, and the frame is big enough; dense otherwise), ``"dense"``,
    ``"pruned"``, or ``"scalar"`` (the reference double loop).  Every
    engine returns an identical table.

    ``pickup_matrix`` / ``trip_km`` optionally inject frame-cached
    distance kernels (the taxi-major ``D(t_i, r_j^s)`` matrix and the
    per-request trip vector; see
    :class:`repro.simulation.FrameDistanceCache`).  Supplying a pickup
    matrix forces the dense engine — the matrix *is* the dense kernel
    output — and the caller is responsible for the values being
    bit-identical to scalar ``distance`` calls (true for every cache in
    this package, which computes with ``exact=True`` kernels).
    """
    config = config if config is not None else DispatchConfig()
    alphas = _checked_alphas(taxis, requests, config, alpha_by_taxi)

    if engine == "scalar":
        if pickup_matrix is not None:
            raise PreferenceError("pickup_matrix requires a vectorized engine")
        return _scalar_table(taxis, requests, oracle, config, alphas)
    pairs = _vectorized_pairs_dispatch(
        taxis, requests, oracle, config, alphas, engine, pickup_matrix, trip_km
    )
    return _pairs_to_table(taxis, requests, *pairs)


def build_nonsharing_arrays(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig | None = None,
    *,
    alpha_by_taxi: Mapping[int, float] | None = None,
    engine: str = "auto",
    pickup_matrix: np.ndarray | None = None,
    trip_km: np.ndarray | None = None,
) -> "PreferenceArrays":
    """The same market as :func:`build_nonsharing_table`, emitted directly
    as :class:`~repro.matching.arrays.PreferenceArrays`.

    This is the frame fast path: the vectorized pair pipeline feeds two
    lexsorts and a handful of scatters, and **no intermediate Python
    dict or tuple is materialized** — proposer index ``j`` is position
    ``j`` in ``requests``, reviewer index ``i`` is position ``i`` in
    ``taxis``, exactly the order the dict builder would have used.  The
    result is structurally identical to
    ``PreferenceArrays.from_table(build_nonsharing_table(...))`` (the
    property suite asserts this), at a fraction of the cost.

    ``engine``/``pickup_matrix``/``trip_km`` behave as in
    :func:`build_nonsharing_table`; ``engine="scalar"`` routes through
    the dict reference and packs it (the oracle path for tests).
    """
    from repro.matching.arrays import PreferenceArrays  # deferred: avoids cycle

    config = config if config is not None else DispatchConfig()
    alphas = _checked_alphas(taxis, requests, config, alpha_by_taxi)
    if engine == "scalar":
        if pickup_matrix is not None:
            raise PreferenceError("pickup_matrix requires a vectorized engine")
        return PreferenceArrays.from_table(_scalar_table(taxis, requests, oracle, config, alphas))
    rj, ti, pick, driver = _vectorized_pairs_dispatch(
        taxis, requests, oracle, config, alphas, engine, pickup_matrix, trip_km
    )
    return arrays_from_pairs(taxis, requests, rj=rj, ti=ti, pick=pick, driver=driver)


def arrays_from_pairs(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    *,
    rj: np.ndarray,
    ti: np.ndarray,
    pick: np.ndarray,
    driver: np.ndarray,
) -> "PreferenceArrays":
    """Pack flat acceptable-pair arrays into :class:`PreferenceArrays`.

    ``rj`` / ``ti`` are request/taxi *positions* into the given
    sequences, ``pick`` / ``driver`` the two scores, in any order.  This
    is the shared CSR tail of :func:`build_nonsharing_arrays` and the
    incremental frame builder in :mod:`repro.matching.incremental`: both
    produce their edge lists differently but rank and pack them through
    this one function, which is what makes the incremental path
    bit-identical to the cold one (same lexsort keys, same tie-breaks,
    same dense-matrix scatters).
    """
    from repro.matching.arrays import PreferenceArrays, UNRANKED  # deferred: avoids cycle

    n_requests, n_taxis = len(requests), len(taxis)
    request_ids = np.array([r.request_id for r in requests], dtype=np.int64)
    taxi_ids = np.array([t.taxi_id for t in taxis], dtype=np.int64)
    n_pairs = len(rj)

    # Proposer-side CSR: one global lexsort groups edges by request (in
    # input position order) with each segment sorted by (score, taxi id),
    # reproducing the reference's per-list sorted().
    proposer_order = np.lexsort((taxi_ids[ti], pick, rj))
    p_owner = rj[proposer_order]
    proposer_list = ti[proposer_order].astype(np.int32)
    p_indptr = np.zeros(n_requests + 1, dtype=np.int64)
    np.cumsum(np.bincount(rj, minlength=n_requests), out=p_indptr[1:])
    p_within = (np.arange(n_pairs, dtype=np.int64) - p_indptr[p_owner]).astype(np.int32)
    proposer_rank = np.full((n_requests, n_taxis), UNRANKED, dtype=np.int32)
    proposer_rank[p_owner, proposer_list] = p_within

    # Reviewer-side mirror.
    reviewer_order = np.lexsort((request_ids[rj], driver, ti))
    r_owner = ti[reviewer_order]
    reviewer_list = rj[reviewer_order].astype(np.int32)
    r_indptr = np.zeros(n_taxis + 1, dtype=np.int64)
    np.cumsum(np.bincount(ti, minlength=n_taxis), out=r_indptr[1:])
    r_within = (np.arange(n_pairs, dtype=np.int64) - r_indptr[r_owner]).astype(np.int32)
    reviewer_rank = np.full((n_taxis, n_requests), UNRANKED, dtype=np.int32)
    reviewer_rank[r_owner, reviewer_list] = r_within

    # Per-edge cross ranks: scatter each side's within-segment rank back
    # to original pair positions, then gather in the other side's order.
    rank_in_reviewer = np.empty(n_pairs, dtype=np.int32)
    rank_in_reviewer[reviewer_order] = r_within
    rank_in_proposer = np.empty(n_pairs, dtype=np.int32)
    rank_in_proposer[proposer_order] = p_within
    return PreferenceArrays(
        proposer_ids=request_ids,
        reviewer_ids=taxi_ids,
        proposer_indptr=p_indptr,
        proposer_list=proposer_list,
        proposer_list_rank=rank_in_reviewer[proposer_order],
        reviewer_indptr=r_indptr,
        reviewer_list=reviewer_list,
        reviewer_list_rank=rank_in_proposer[reviewer_order],
        proposer_rank=proposer_rank,
        reviewer_rank=reviewer_rank,
    )


def _checked_alphas(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    config: DispatchConfig,
    alpha_by_taxi: Mapping[int, float] | None,
) -> dict[int, float]:
    _check_unique_ids(taxis, requests)
    alphas = {
        taxi.taxi_id: (alpha_by_taxi or {}).get(taxi.taxi_id, config.alpha) for taxi in taxis
    }
    for taxi_id, alpha in alphas.items():
        if alpha < 0.0:
            raise PreferenceError(f"taxi {taxi_id} has negative alpha {alpha}")
    return alphas


def _vectorized_pairs_dispatch(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig,
    alphas: Mapping[int, float],
    engine: str,
    pickup_matrix: np.ndarray | None,
    trip_km: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Engine selection for the vectorized candidate-pair pipeline."""
    if pickup_matrix is not None and engine == "pruned":
        raise PreferenceError("pickup_matrix implies the dense engine")
    if engine == "pruned":
        if not _prune_eligible(oracle, config):
            raise PreferenceError(
                "pruned engine requires a finite passenger threshold and a "
                "grid-prunable oracle (Euclidean/Manhattan or an "
                "expansion-scaled wrapper of one)"
            )
        prune = True
    elif engine == "dense":
        prune = False
    elif engine == "auto":
        prune = (
            pickup_matrix is None
            and _prune_eligible(oracle, config)
            and len(taxis) * len(requests) >= _PRUNE_MIN_PAIRS
        )
    else:
        raise PreferenceError(f"unknown engine {engine!r}")
    return _vectorized_pairs(
        taxis,
        requests,
        oracle,
        config,
        alphas,
        prune=prune,
        pickup_matrix=pickup_matrix,
        trip_km=trip_km,
    )


def build_nonsharing_table_reference(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig | None = None,
    *,
    alpha_by_taxi: Mapping[int, float] | None = None,
) -> PreferenceTable:
    """The scalar double-loop reference implementation.

    Kept as the semantic specification of :func:`build_nonsharing_table`:
    the equivalence property tests and the kernel benchmark both compare
    the vectorized engines against this, pair for pair and bit for bit.
    """
    return build_nonsharing_table(
        taxis, requests, oracle, config, alpha_by_taxi=alpha_by_taxi, engine="scalar"
    )


def _prune_eligible(oracle: DistanceOracle, config: DispatchConfig) -> bool:
    """Whether grid candidate pruning is sound for this oracle/config.

    The grid query under-approximates distance with L-infinity cell
    geometry, so it is exact only for metrics that dominate L-infinity
    on the stored planar coordinates
    (:func:`~repro.geometry.distance.oracle_dominates_linf`), and only
    when the passenger threshold actually bounds the candidate ball.
    """
    return math.isfinite(config.passenger_threshold_km) and oracle_dominates_linf(oracle)


def _scalar_table(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig,
    alphas: Mapping[int, float],
) -> PreferenceTable:
    proposer_scores: dict[tuple[int, int], float] = {}
    reviewer_scores: dict[tuple[int, int], float] = {}
    acceptable_by_request: dict[int, list[tuple[float, int]]] = {r.request_id: [] for r in requests}
    acceptable_by_taxi: dict[int, list[tuple[float, int]]] = {t.taxi_id: [] for t in taxis}

    for request in requests:
        trip = request.trip_distance(oracle)
        for taxi in taxis:
            if not taxi.can_carry(request):
                continue
            pickup_km = oracle.distance(taxi.location, request.pickup)
            if not math.isfinite(pickup_km) or pickup_km > config.passenger_threshold_km:
                continue
            driver = pickup_km - alphas[taxi.taxi_id] * trip
            if not math.isfinite(driver) or driver > config.taxi_threshold_km:
                continue
            proposer_scores[(request.request_id, taxi.taxi_id)] = pickup_km
            reviewer_scores[(request.request_id, taxi.taxi_id)] = driver
            acceptable_by_request[request.request_id].append((pickup_km, taxi.taxi_id))
            acceptable_by_taxi[taxi.taxi_id].append((driver, request.request_id))

    proposer_prefs = {
        rid: tuple(t for _, t in sorted(pairs)) for rid, pairs in acceptable_by_request.items()
    }
    reviewer_prefs = {
        tid: tuple(r for _, r in sorted(pairs)) for tid, pairs in acceptable_by_taxi.items()
    }
    return PreferenceTable(
        proposer_prefs=proposer_prefs,
        reviewer_prefs=reviewer_prefs,
        proposer_scores=proposer_scores,
        reviewer_scores=reviewer_scores,
        validate=False,
    )


def _vectorized_pairs(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig,
    alphas: Mapping[int, float],
    *,
    prune: bool,
    pickup_matrix: np.ndarray | None = None,
    trip_km: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The acceptable candidate pairs of one frame, as flat arrays.

    Returns ``(rj, ti, pick, driver)``: request/taxi *positions* (into
    the given sequences) of every mutually acceptable pair plus both
    scores, in no particular order.  This is the shared front half of
    the dict and array builders.
    """
    n_requests = len(requests)
    n_taxis = len(taxis)
    empty_idx = np.empty(0, dtype=np.intp)
    empty_f = np.empty(0, dtype=np.float64)

    if n_requests == 0 or n_taxis == 0:
        return empty_idx, empty_idx, empty_f, empty_f

    seats = np.array([t.seats for t in taxis], dtype=np.int64)
    party = np.array([r.passengers for r in requests], dtype=np.int64)
    alpha_arr = np.array([alphas[t.taxi_id] for t in taxis], dtype=np.float64)
    pickups = [r.pickup for r in requests]
    taxi_points = [t.location for t in taxis]
    # Only kernels honouring the bit-exactness contract may replace
    # scalar ``distance`` calls, so every engine's scores match the
    # reference bit for bit.  When the contract holds, points are packed
    # once and the packed arrays feed every kernel call below; otherwise
    # the Point lists go through the scalar-loop fallbacks.
    exact_kernels = batch_kernels_exact(oracle)
    if trip_km is not None:
        trip = np.asarray(trip_km, dtype=np.float64)
        if trip.shape != (n_requests,):
            raise PreferenceError(f"trip_km has shape {trip.shape}, expected ({n_requests},)")
    elif exact_kernels:
        trip = np.asarray(
            oracle.paired(
                sources=as_point_array(pickups),
                targets=as_point_array([r.dropoff for r in requests]),
            ),
            dtype=np.float64,
        )
    else:
        trip = oracle_paired(
            oracle, sources=pickups, targets=[r.dropoff for r in requests], exact=True
        )
    if exact_kernels and (prune or pickup_matrix is None):
        pickup_xy = as_point_array(pickups)
        taxi_xy = as_point_array(taxi_points)

    if prune:
        # Candidate pruning: only taxis within the passenger threshold can
        # be acceptable.  The grid box query over-approximates the
        # threshold ball (and the exact filter below is inclusive at the
        # boundary), so no acceptable pair is ever dropped.
        index = GridSpatialIndex(cell_size=suggest_cell_size(taxi_points), oracle=oracle)
        index.bulk_load((i, point) for i, point in enumerate(taxi_points))
        cols: list[int] = []
        counts = np.empty(n_requests, dtype=np.intp)
        for j, request in enumerate(requests):
            candidates = index.box_candidates(request.pickup, config.passenger_threshold_km)
            cols.extend(candidates)
            counts[j] = len(candidates)
        ti = np.array(cols, dtype=np.intp)
        rj = np.repeat(np.arange(n_requests, dtype=np.intp), counts)
        # Sources are taxi locations, as in the scalar reference's
        # ``distance(taxi.location, request.pickup)`` — the order matters
        # for asymmetric oracles (oneway road edges) and for the exact
        # float association of the road network's snap offsets.
        if exact_kernels:
            pick = np.asarray(
                oracle.paired(sources=taxi_xy[ti], targets=pickup_xy[rj]), dtype=np.float64
            )
        else:  # candidate distances stay scalar `distance` calls
            distance = oracle.distance
            pick = np.array(
                [distance(taxi_points[i], pickups[j]) for j, i in zip(rj.tolist(), ti.tolist())],
                dtype=np.float64,
            )
        flat_keep = np.flatnonzero(pick <= config.passenger_threshold_km)
        rj, ti, pick = rj[flat_keep], ti[flat_keep], pick[flat_keep]
    else:
        # Taxi-major matrix so rows/sources are taxi locations, matching
        # the scalar ``distance(taxi.location, request.pickup)`` order.
        if pickup_matrix is not None:
            pick_matrix = np.asarray(pickup_matrix, dtype=np.float64)
            if pick_matrix.shape != (n_taxis, n_requests):
                raise PreferenceError(
                    f"pickup_matrix has shape {pick_matrix.shape}, "
                    f"expected ({n_taxis}, {n_requests})"
                )
        elif exact_kernels:
            pick_matrix = np.asarray(
                oracle.pairwise(sources=taxi_xy, targets=pickup_xy), dtype=np.float64
            )
        else:
            pick_matrix = oracle_pairwise(
                oracle, sources=taxi_points, targets=pickups, exact=True
            )
        # Staged masking: the cheap threshold compare first (it rejects
        # NaN too), then every remaining acceptability condition only on
        # the surviving pairs.
        flat = np.flatnonzero(pick_matrix <= config.passenger_threshold_km)
        ti, rj = np.divmod(flat, n_requests)
        pick = pick_matrix.ravel()[flat]

    driver = pick - alpha_arr[ti] * trip[rj]
    ok = (
        (party[rj] <= seats[ti])
        & np.isfinite(pick)
        & np.isfinite(driver)
        & (driver <= config.taxi_threshold_km)
    )
    return rj[ok], ti[ok], pick[ok], driver[ok]


def _pairs_to_table(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    rj: np.ndarray,
    ti: np.ndarray,
    pick: np.ndarray,
    driver: np.ndarray,
) -> PreferenceTable:
    """The dict tail of the vectorized pipeline: sort, group, tuple-ize."""
    n_requests = len(requests)
    n_taxis = len(taxis)
    request_ids = np.array([r.request_id for r in requests], dtype=np.int64)
    taxi_ids = np.array([t.taxi_id for t in taxis], dtype=np.int64)

    if len(rj) == 0:
        return PreferenceTable(
            proposer_prefs={r.request_id: () for r in requests},
            reviewer_prefs={t.taxi_id: () for t in taxis},
            validate=False,
        )

    # One global lexsort per side reproduces the per-list sorted() of the
    # reference: primary key the owner, then score, then partner id.
    proposer_order = np.lexsort((taxi_ids[ti], pick, rj))
    rj_sorted = rj[proposer_order]
    proposer_partner = taxi_ids[ti[proposer_order]].tolist()
    starts = np.searchsorted(rj_sorted, np.arange(n_requests))
    ends = np.searchsorted(rj_sorted, np.arange(1, n_requests + 1))
    proposer_prefs = {
        requests[j].request_id: tuple(proposer_partner[starts[j] : ends[j]])
        for j in range(n_requests)
    }

    reviewer_order = np.lexsort((request_ids[rj], driver, ti))
    ti_sorted = ti[reviewer_order]
    reviewer_partner = request_ids[rj[reviewer_order]].tolist()
    starts = np.searchsorted(ti_sorted, np.arange(n_taxis))
    ends = np.searchsorted(ti_sorted, np.arange(1, n_taxis + 1))
    reviewer_prefs = {
        taxis[i].taxi_id: tuple(reviewer_partner[starts[i] : ends[i]]) for i in range(n_taxis)
    }

    keys = list(zip(request_ids[rj].tolist(), taxi_ids[ti].tolist()))
    return PreferenceTable(
        proposer_prefs=proposer_prefs,
        reviewer_prefs=reviewer_prefs,
        proposer_scores=dict(zip(keys, pick.tolist())),
        reviewer_scores=dict(zip(keys, driver.tolist())),
        validate=False,
    )


def _check_unique_ids(taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]) -> None:
    taxi_ids = [t.taxi_id for t in taxis]
    request_ids = [r.request_id for r in requests]
    if len(set(taxi_ids)) != len(taxi_ids):
        raise PreferenceError("duplicate taxi ids")
    if len(set(request_ids)) != len(request_ids):
        raise PreferenceError("duplicate request ids")
