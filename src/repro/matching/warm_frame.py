"""The engine's warm frame solver: churn strips, lean CSR, shared GS rounds.

This is the degenerate-resume specialization of the incremental
machinery in :mod:`repro.matching.incremental`, fused into one
allocation-lean path for the simulation engine's frame cadence.  Two
facts about the engine make the specialization exact:

**Stability theorem (edge turnover).**  In a stable matching with
dummies, an unmatched proposer and an unmatched reviewer cannot be
mutually acceptable — they would form a blocking pair (both prefer any
listed partner to the dummy).  The engine departs every matched pair
together (the taxi drives off with its passenger), so the entities two
consecutive frames share are exactly the *unmatched* ones, and none of
them moved.  Hence the retained × retained block of the new frame
contains **no acceptable pair**, and the new frame's entire edge set
lives on two churn strips: ``new taxis × all requests`` and
``retained taxis × new requests``.

**Degeneracy lemma (resume ≡ cold).**  At termination of deferred
acceptance, an unmatched proposer has exhausted its acceptable list and
every reviewer on it holds someone (a reviewer refuses only while
holding a suitor it prefers) — so all of them matched and departed.  An
unmatched reviewer never received a proposal.  Resuming the previous
frame's solver state on the new instance therefore starts with every
cursor at the top of an entirely fresh preference row, no held pairs,
and every proposer free: the resume *is* a cold Gale–Shapley run on the
new arrays.  (:func:`repro.matching.incremental.resume_deferred_acceptance`
proves the general case and validates these preconditions one by one;
here they hold by construction, so the solve skips straight to
:func:`~repro.matching.deferred_acceptance.gale_shapley_rounds`.)

What the warm path then actually saves per frame:

* the full ``taxis × requests`` pickup kernel and acceptability masks —
  only the churn strips are scored;
* the dense rank matrices and reviewer-side CSR of
  :class:`~repro.matching.arrays.PreferenceArrays` — stability *audit*
  structure the frame solve never reads.  The lean pack keeps only what
  :func:`~repro.matching.deferred_acceptance.gale_shapley_rounds`
  consumes (proposer CSR + per-edge cross ranks), built with the **same
  lexsort keys** as :func:`~repro.matching.preferences.arrays_from_pairs`
  (keys are unique, so the order is total and input-order independent —
  the CSR content is bit-identical to the cold pack's);
* every per-frame Python attribute walk over the queue: pickup
  coordinates, party sizes and trip distances of *retained* requests are
  carried across frames as aligned NumPy arrays in
  :class:`FrameSolveState`, so per-frame Python-object work is
  proportional to the churn, not the queue.

Entity identity is what makes misclassification impossible rather than
merely unlikely: an entity is *retained* only if the **same live
object** (CPython address, kept alive by the state holding a reference)
is presented again.  The engine re-presents queued request objects
verbatim, and its taxi agents memoize their snapshot on the location
object, so an unmoved idle taxi presents the same frozen ``Taxi`` each
frame.  Both entity types are frozen dataclasses, so a held address
proves every field is unchanged.  The check only ever errs toward
*new*, which is always sound: a caller that rebuilds equal objects each
frame merely reclassifies them as new and rebuilds their strip rows,
while the acceptability masks discard the retained × retained entries
the theorem proves empty.

Any violated precondition raises
:class:`~repro.core.errors.WarmStartError`; the dispatcher redoes the
frame cold (and re-seeds), so a warm run can never produce a frame the
cold path would not.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import DispatchConfig
from repro.core.errors import WarmStartError
from repro.core.types import PassengerRequest, Taxi
from repro.geometry.batch import (
    as_point_array,
    batch_kernels_exact,
    oracle_paired,
    oracle_pairwise,
)
from repro.geometry.distance import DistanceOracle
from repro.geometry.point import Point
from repro.matching.arrays import NO_PARTNER
from repro.matching.deferred_acceptance import gale_shapley_rounds
from repro.matching.incremental import IncrementalBuildStats
from repro.matching.result import Matching

__all__ = [
    "FrameSolveState",
    "frame_state_from_cold",
    "request_trips",
    "warm_frame_solve",
]


@dataclass(slots=True)
class FrameSolveState:
    """Frame-to-frame solver state carried by a warm-started dispatcher.

    All request-side arrays are aligned with the previous frame's queue
    order and all taxi-side arrays with the previous frame's fleet
    order.  ``req_objs`` / ``taxi_objs`` pin the frame's objects alive
    so the CPython addresses in the sorted address arrays stay
    unambiguous: a *new* object in the next frame can never alias a
    held address.  The matched-address arrays record which entities
    departed with the previous matching — the other half of the
    retained test.
    """

    req_ids: np.ndarray
    """``(R,)`` int64 request ids, in the previous frame's queue order."""
    req_addr_sorted: np.ndarray
    """``(R,)`` uint64 object addresses, sorted for membership tests."""
    req_addr_rows: np.ndarray
    """``(R,)`` intp rows of ``req_addr_sorted`` back into queue order."""
    req_objs: list[PassengerRequest]
    """The previous queue, pinned so addresses stay live and unique."""
    pick_xy: np.ndarray
    """``(R, 2)`` float64 pickup coordinates."""
    party: np.ndarray
    """``(R,)`` int64 passenger counts."""
    trip: np.ndarray
    """``(R,)`` float64 pickup→dropoff distances."""
    matched_req_addr: np.ndarray
    """Sorted uint64 addresses of the request objects matched last frame."""
    taxi_ids: np.ndarray
    """``(T,)`` int64 taxi ids, in the previous frame's fleet order."""
    taxi_addr_sorted: np.ndarray
    """``(T,)`` uint64 snapshot addresses, sorted for membership tests."""
    taxi_addr_rows: np.ndarray
    """``(T,)`` intp rows of ``taxi_addr_sorted`` back into fleet order."""
    taxi_objs: list[Taxi]
    """The previous idle fleet, pinned so addresses stay live and unique."""
    taxi_xy: np.ndarray
    """``(T, 2)`` float64 taxi locations, in fleet order."""
    taxi_seats: np.ndarray
    """``(T,)`` int64 seat counts, in fleet order."""
    matched_taxi_addr: np.ndarray
    """Sorted uint64 addresses of the taxi objects matched last frame."""


def request_trips(
    requests: Sequence[PassengerRequest], oracle: DistanceOracle
) -> np.ndarray:
    """Per-request pickup→dropoff distances, bit-identical to the scalar
    oracle (the same exactness contract the frame cache relies on)."""
    if not requests:
        return np.empty(0, dtype=np.float64)
    if batch_kernels_exact(oracle):
        return np.asarray(
            oracle.paired(
                sources=as_point_array([r.pickup for r in requests]),
                targets=as_point_array([r.dropoff for r in requests]),
            ),
            dtype=np.float64,
        )
    return oracle_paired(
        oracle,
        sources=[r.pickup for r in requests],
        targets=[r.dropoff for r in requests],
        exact=True,
    )


def _pickup_strip(
    oracle: DistanceOracle,
    taxi_xy: np.ndarray,
    taxi_points: Callable[[], list[Point]],
    pick_xy: np.ndarray,
    pick_points: Callable[[], list[Point]],
) -> np.ndarray:
    """``D(taxi, pickup)`` over one churn strip, exact-kernel fast path.

    The point lists are thunks: on the exact-kernel path (every built-in
    oracle the engine runs) the packed coordinate arrays feed the kernel
    directly and no per-entity Python loop runs at all.
    """
    if batch_kernels_exact(oracle):
        return np.asarray(oracle.pairwise(sources=taxi_xy, targets=pick_xy), dtype=np.float64)
    return oracle_pairwise(oracle, sources=taxi_points(), targets=pick_points(), exact=True)


def _sorted_member_rows(sorted_keys: np.ndarray, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(found_mask, positions)`` of each key inside a sorted key array."""
    if sorted_keys.size == 0:
        return np.zeros(len(keys), dtype=bool), np.zeros(len(keys), dtype=np.intp)
    pos = np.searchsorted(sorted_keys, keys)
    pos = np.minimum(pos, sorted_keys.size - 1)
    return sorted_keys[pos] == keys, pos


def _taxi_alpha(
    taxi_ids: np.ndarray,
    config: DispatchConfig,
    alpha_by_taxi: Mapping[int, float] | None,
) -> np.ndarray:
    if alpha_by_taxi is None:
        alpha = np.full(len(taxi_ids), float(config.alpha), dtype=np.float64)
    else:
        alpha = np.array(
            [float(alpha_by_taxi.get(int(t), config.alpha)) for t in taxi_ids.tolist()],
            dtype=np.float64,
        )
    if bool(np.any(alpha < 0.0)):
        # Surface the canonical PreferenceError via the cold fallback.
        raise WarmStartError("negative alpha in frame", reason="bad-alpha")
    return alpha


def _addrs_of(objs: Sequence[object]) -> np.ndarray:
    """CPython addresses of ``objs`` (``map`` keeps the loop in C)."""
    return np.fromiter(map(id, objs), dtype=np.uint64, count=len(objs))


def _matched_addrs(addrs: np.ndarray, ids: np.ndarray, matched_ids: Iterable[int]) -> np.ndarray:
    """Sorted addresses of the entities whose ids were matched.

    ``ids`` is the frame-order id array (unique — the solve validated
    it); the matched ids are resolved to rows through one sorted index.
    """
    matched = np.fromiter(map(int, matched_ids), dtype=np.int64)
    if matched.size == 0:
        return np.empty(0, dtype=np.uint64)
    order = np.argsort(ids, kind="stable")
    rows = order[np.searchsorted(ids[order], matched)]
    return np.sort(addrs[rows])


def frame_state_from_cold(
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    matching: Matching,
    *,
    trip: np.ndarray,
) -> FrameSolveState:
    """Seed warm state from a cold frame's inputs and solved matching.

    ``matching`` maps request id → taxi id (both NSTD orientations after
    the dispatcher's flip); ``trip`` is the frame's per-request trip
    vector in queue order (the cold path computes it anyway).

    Invariants established for the next frame's
    :func:`warm_frame_solve`: the returned state pins every ``taxis`` /
    ``requests`` object alive (so CPython addresses stay unambiguous),
    records the matched entities' addresses (a matched entity
    re-presented later is treated as *new* — the §10 soundness rule),
    and carries the per-entity arrays aligned to this frame's order.
    Never raises: any id problem was already rejected by the cold solve
    that produced ``matching``.
    """
    req_ids = np.fromiter(
        (r.request_id for r in requests), dtype=np.int64, count=len(requests)
    )
    req_addrs = _addrs_of(requests)
    req_addr_rows = np.argsort(req_addrs).astype(np.intp, copy=False)
    taxi_ids = np.fromiter((t.taxi_id for t in taxis), dtype=np.int64, count=len(taxis))
    taxi_addrs = _addrs_of(taxis)
    taxi_addr_rows = np.argsort(taxi_addrs).astype(np.intp, copy=False)
    return FrameSolveState(
        req_ids=req_ids,
        req_addr_sorted=req_addrs[req_addr_rows],
        req_addr_rows=req_addr_rows,
        req_objs=list(requests),
        pick_xy=as_point_array([r.pickup for r in requests]),
        party=np.fromiter((r.passengers for r in requests), dtype=np.int64, count=len(requests)),
        trip=np.asarray(trip, dtype=np.float64),
        matched_req_addr=_matched_addrs(req_addrs, req_ids, (p for p, _ in matching.pairs)),
        taxi_ids=taxi_ids,
        taxi_addr_sorted=taxi_addrs[taxi_addr_rows],
        taxi_addr_rows=taxi_addr_rows,
        taxi_objs=list(taxis),
        taxi_xy=as_point_array([t.location for t in taxis]),
        taxi_seats=np.fromiter((t.seats for t in taxis), dtype=np.int64, count=len(taxis)),
        matched_taxi_addr=_matched_addrs(
            taxi_addrs, taxi_ids, (t for _, t in matching.pairs)
        ),
    )


def warm_frame_solve(
    state: FrameSolveState,
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig,
    *,
    optimize_for: str = "passenger",
    alpha_by_taxi: Mapping[int, float] | None = None,
    on_new_trips: Callable[[np.ndarray, np.ndarray], None] | None = None,
) -> tuple[Matching, tuple[np.ndarray, np.ndarray], IncrementalBuildStats, FrameSolveState]:
    """Solve one frame warm: strip scoring, lean pack, shared GS rounds.

    Returns the frame's stable matching (request id → taxi id, already
    in NSTD orientation for both ``optimize_for`` modes), the matched
    ``(taxi_rows, request_rows)`` pairs as positions into the given
    sequences sorted by request id (so a caller can build a schedule
    without re-keying either side by id), build stats for telemetry,
    and the state seeding the next frame.  Bit-identical to the cold
    array path on the same inputs — see the module docstring for the
    two lemmas this rests on.

    Parameters.  ``state`` is the previous frame's
    :class:`FrameSolveState`; it is only *read* (a fresh state is
    returned), so one state object may safely back several lookups —
    the streaming zone matcher relies on this.  ``taxis`` and
    ``requests`` are the frame's idle fleet and pending queue;
    entities carried over from the previous frame must be the *same
    live objects* for the retained fast path to engage (equal-but-new
    objects are safely reclassified as new).  ``optimize_for`` selects
    the proposing side (``"passenger"`` or ``"taxi"``);
    ``alpha_by_taxi`` overrides ``config.alpha`` per driver.
    ``on_new_trips`` is called once per frame with the ids and trip
    distances of the *new* requests (the only trips computed this
    frame); the dispatcher uses it to keep the engine's request-keyed
    trip memo primed exactly as the cold path's bulk computation does.

    Raises :class:`~repro.core.errors.WarmStartError` — and never a
    partial result — when a precondition fails, carrying a machine-
    readable ``reason``: ``duplicate-ids`` (either side repeats an id)
    or ``bad-alpha`` (negative per-driver α — surfaced here so the cold
    fallback reports the canonical ``PreferenceError``).  Oracles
    without exact batch kernels are not an error: strip scoring falls
    back to the scalar helpers.  The caller must redo the frame cold
    and re-seed via
    :func:`frame_state_from_cold`; warm dispatchers count this as a
    ``warm_fallbacks`` telemetry event.
    """
    n_requests = len(requests)
    n_taxis = len(taxis)

    # -- classify churn (vectorized; errs only toward "new") ---------------
    # One Python pass per side: object addresses only.  Every other
    # per-entity fact (id, coordinates, party, seats, trip) is either
    # carried in the state for retained rows or extracted just for the
    # new ones.  A matched entity departed with its partner; if its
    # (pinned, frozen) object were ever re-presented, treat it as new.
    addrs = _addrs_of(requests)
    ret_r, addr_pos = _sorted_member_rows(state.req_addr_sorted, addrs)
    prev_rows = state.req_addr_rows[addr_pos]
    if state.matched_req_addr.size and bool(np.any(ret_r)):
        held_over, _ = _sorted_member_rows(state.matched_req_addr, addrs)
        ret_r &= ~held_over

    taxi_addrs = _addrs_of(taxis)
    ret_t, taxi_pos = _sorted_member_rows(state.taxi_addr_sorted, taxi_addrs)
    prev_t_rows = state.taxi_addr_rows[taxi_pos]
    if state.matched_taxi_addr.size and bool(np.any(ret_t)):
        departed, _ = _sorted_member_rows(state.matched_taxi_addr, taxi_addrs)
        ret_t &= ~departed

    new_r_rows = np.flatnonzero(~ret_r)
    ret_r_rows = np.flatnonzero(ret_r)
    new_t_rows = np.flatnonzero(~ret_t)
    ret_t_rows = np.flatnonzero(ret_t)

    # -- entity stores: gather retained rows, extract only the new ones ----
    taxi_ids = np.empty(n_taxis, dtype=np.int64)
    taxi_xy = np.empty((n_taxis, 2), dtype=np.float64)
    seats = np.empty(n_taxis, dtype=np.int64)
    if ret_t_rows.size:
        src_t = prev_t_rows[ret_t_rows]
        taxi_ids[ret_t_rows] = state.taxi_ids[src_t]
        taxi_xy[ret_t_rows] = state.taxi_xy[src_t]
        seats[ret_t_rows] = state.taxi_seats[src_t]
    new_taxis = [taxis[i] for i in new_t_rows.tolist()]
    if new_taxis:
        taxi_ids[new_t_rows] = np.fromiter(
            (t.taxi_id for t in new_taxis), dtype=np.int64, count=len(new_taxis)
        )
        taxi_xy[new_t_rows] = as_point_array([t.location for t in new_taxis])
        seats[new_t_rows] = np.fromiter(
            (t.seats for t in new_taxis), dtype=np.int64, count=len(new_taxis)
        )
    # The engine presents both sides in ascending id order, making the
    # uniqueness checks one vectorized comparison each; the general path
    # (unsorted but unique is fine) only runs on hand-built frames.
    taxi_ids_ascending = n_taxis < 2 or bool(np.all(taxi_ids[1:] > taxi_ids[:-1]))
    if not taxi_ids_ascending and np.unique(taxi_ids).size != n_taxis:
        raise WarmStartError("duplicate taxi ids in frame", reason="duplicate-ids")
    alpha = _taxi_alpha(taxi_ids, config, alpha_by_taxi)

    req_ids = np.empty(n_requests, dtype=np.int64)
    pick_xy = np.empty((n_requests, 2), dtype=np.float64)
    party = np.empty(n_requests, dtype=np.int64)
    trip = np.empty(n_requests, dtype=np.float64)
    if ret_r_rows.size:
        src = prev_rows[ret_r_rows]
        req_ids[ret_r_rows] = state.req_ids[src]
        pick_xy[ret_r_rows] = state.pick_xy[src]
        party[ret_r_rows] = state.party[src]
        trip[ret_r_rows] = state.trip[src]
    new_requests = [requests[j] for j in new_r_rows.tolist()]
    if new_requests:
        req_ids[new_r_rows] = np.fromiter(
            (r.request_id for r in new_requests), dtype=np.int64, count=len(new_requests)
        )
        pick_xy[new_r_rows] = as_point_array([r.pickup for r in new_requests])
        party[new_r_rows] = np.fromiter(
            (r.passengers for r in new_requests), dtype=np.int64, count=len(new_requests)
        )
        new_trips = request_trips(new_requests, oracle)
        trip[new_r_rows] = new_trips
        if on_new_trips is not None:
            on_new_trips(req_ids[new_r_rows], new_trips)
    req_ids_ascending = n_requests < 2 or bool(np.all(req_ids[1:] > req_ids[:-1]))
    if not req_ids_ascending and np.unique(req_ids).size != n_requests:
        raise WarmStartError("duplicate request ids in frame", reason="duplicate-ids")

    # -- churn strips: the frame's entire edge set --------------------------
    # Strip A: new taxis × all requests.  Strip B: retained taxis × new
    # requests.  Retained × retained is empty by the stability theorem.
    # Every acceptability condition is applied while the scores are
    # still dense matrices: the driver-side threshold rejects the large
    # majority of in-range pairs, so fusing the masks here means the
    # edge lists below are only ever materialized at their final size.
    # The surviving edge *set* and its row-major order are exactly what
    # the cold pipeline's staged filtering produces, and the driver
    # scores are computed by the same elementwise IEEE operations.
    strip_ti: list[np.ndarray] = []
    strip_rj: list[np.ndarray] = []
    strip_pick: list[np.ndarray] = []
    strip_driver: list[np.ndarray] = []
    theta = config.passenger_threshold_km
    tau = config.taxi_threshold_km
    if new_t_rows.size and n_requests:
        pick_a = _pickup_strip(
            oracle,
            taxi_xy[new_t_rows],
            lambda: [taxis[i].location for i in new_t_rows.tolist()],
            pick_xy,
            lambda: [r.pickup for r in requests],
        )
        driver_a = pick_a - alpha[new_t_rows, None] * trip[None, :]
        ok = pick_a <= theta
        ok &= party[None, :] <= seats[new_t_rows, None]
        ok &= np.isfinite(pick_a)
        ok &= np.isfinite(driver_a)
        ok &= driver_a <= tau
        flat = np.flatnonzero(ok)
        local_ti, rj_a = np.divmod(flat, n_requests)
        strip_ti.append(new_t_rows[local_ti])
        strip_rj.append(rj_a)
        strip_pick.append(pick_a.ravel()[flat])
        strip_driver.append(driver_a.ravel()[flat])
    if ret_t_rows.size and new_r_rows.size:
        pick_b = _pickup_strip(
            oracle,
            taxi_xy[ret_t_rows],
            lambda: [taxis[i].location for i in ret_t_rows.tolist()],
            pick_xy[new_r_rows],
            lambda: [r.pickup for r in new_requests],
        )
        driver_b = pick_b - alpha[ret_t_rows, None] * trip[new_r_rows][None, :]
        ok = pick_b <= theta
        ok &= party[new_r_rows][None, :] <= seats[ret_t_rows, None]
        ok &= np.isfinite(pick_b)
        ok &= np.isfinite(driver_b)
        ok &= driver_b <= tau
        flat = np.flatnonzero(ok)
        local_ti, local_rj = np.divmod(flat, new_r_rows.size)
        strip_ti.append(ret_t_rows[local_ti])
        strip_rj.append(new_r_rows[local_rj])
        strip_pick.append(pick_b.ravel()[flat])
        strip_driver.append(driver_b.ravel()[flat])

    if strip_ti:
        ti = np.concatenate(strip_ti)
        rj = np.concatenate(strip_rj)
        pick = np.concatenate(strip_pick)
        driver = np.concatenate(strip_driver)
    else:
        ti = np.empty(0, dtype=np.intp)
        rj = np.empty(0, dtype=np.intp)
        pick = np.empty(0, dtype=np.float64)
        driver = np.empty(0, dtype=np.float64)
    n_edges = len(rj)

    # -- lean pack: cold-identical lexsort keys, CSR only -------------------
    # The cold pack orders edges with ``np.lexsort`` on keys that are
    # *total* (a (taxi, request) pair appears once, so the tertiary id
    # key always resolves): proposer lists by ``(rj_id, pick, ti_id)``,
    # reviewer lists by ``(ti_id, driver, rj_id)``.  Any sort realizing
    # the same total order yields the *equal* permutation, which frees
    # the warm pack to pick the cheapest construction.  When both id
    # arrays are strictly ascending in row order (the engine's fleets
    # and queues always are), row indices are order-isomorphic to ids
    # and the strips' row-major layout makes one stable radix sort by
    # ``ti`` produce the shared ``(ti, rj)``-sorted base; each side then
    # needs only its float key plus one more radix pass.  The general
    # path (hand-built frames) falls back to the full stable-sort chains
    # on the raw 64-bit ids.
    if req_ids_ascending and taxi_ids_ascending:
        # Timsort's run detection makes the base sort near-free: the
        # concatenated strips are two already-sorted runs.  The row
        # indices are then narrowed to 16 bits where the frame allows
        # (NumPy radix-sorts ≤16-bit integers, an order of magnitude
        # faster than the comparison sort 64-bit keys pay).
        idx_dtype = np.int16 if max(n_taxis, n_requests) <= 32767 else np.int32
        base = np.argsort(ti, kind="stable")
        ti_base = ti[base].astype(idx_dtype)
        rj_base = rj[base].astype(idx_dtype)
        by_pick = np.argsort(pick[base], kind="stable")
        order_p = base[by_pick[np.argsort(rj_base[by_pick], kind="stable")]]
        by_driver = np.argsort(driver[base], kind="stable")
        order_r = base[by_driver[np.argsort(ti_base[by_driver], kind="stable")]]
    else:
        # The CSR offsets below (``bincount`` cumsums) enumerate
        # segments in *row* order, so the primary sort key must be the
        # row index, not the id — with non-ascending frames they
        # disagree, and an id-primary order would pair each segment
        # with another segment's offsets.  The id keys still serve as
        # the within-segment tie-breaks, which is where cold-identical
        # preference order actually lives: each entity's list is
        # ordered by its float score with ties broken by the *id* of
        # the listed partner, exactly the cold lexsort's tertiary key.
        ti_key = taxi_ids[ti]
        rj_key = req_ids[rj]
        order_p = np.argsort(ti_key, kind="stable")
        order_p = order_p[np.argsort(pick[order_p], kind="stable")]
        order_p = order_p[np.argsort(rj[order_p], kind="stable")]
        order_r = np.argsort(rj_key, kind="stable")
        order_r = order_r[np.argsort(driver[order_r], kind="stable")]
        order_r = order_r[np.argsort(ti[order_r], kind="stable")]
    p_indptr = np.zeros(n_requests + 1, dtype=np.int64)
    np.cumsum(np.bincount(rj, minlength=n_requests), out=p_indptr[1:])
    p_within = np.arange(n_edges, dtype=np.int64) - p_indptr[rj[order_p]]
    r_indptr = np.zeros(n_taxis + 1, dtype=np.int64)
    np.cumsum(np.bincount(ti, minlength=n_taxis), out=r_indptr[1:])
    r_within = np.arange(n_edges, dtype=np.int64) - r_indptr[ti[order_r]]

    # -- the degenerate resume: plain GS rounds on the fresh instance -------
    if optimize_for == "taxi":
        rank_in_proposer = np.empty(n_edges, dtype=np.int64)
        rank_in_proposer[order_p] = p_within
        partner, _, _ = gale_shapley_rounds(
            r_indptr, rj[order_r], rank_in_proposer[order_r], n_requests
        )
        matched_rev = np.flatnonzero(partner != NO_PARTNER)
        matched_prop = partner[matched_rev]
        pairs = {
            int(req_ids[r]): int(taxi_ids[p])
            for p, r in zip(matched_prop.tolist(), matched_rev.tolist())
        }
        t_rows, r_rows = matched_prop, matched_rev
    else:
        rank_in_reviewer = np.empty(n_edges, dtype=np.int64)
        rank_in_reviewer[order_r] = r_within
        partner, _, _ = gale_shapley_rounds(
            p_indptr, ti[order_p], rank_in_reviewer[order_p], n_taxis
        )
        matched_rev = np.flatnonzero(partner != NO_PARTNER)
        matched_prop = partner[matched_rev]
        pairs = {
            int(req_ids[p]): int(taxi_ids[r])
            for p, r in zip(matched_prop.tolist(), matched_rev.tolist())
        }
        t_rows, r_rows = matched_rev, matched_prop
    matching = Matching(pairs)
    # Present matched rows sorted by request id — the order NSTD's
    # schedule builder iterates pairs in.
    row_order = np.argsort(req_ids[r_rows], kind="stable")
    matched_rows = (t_rows[row_order], r_rows[row_order])

    stats = IncrementalBuildStats(
        n_taxis=n_taxis,
        n_requests=n_requests,
        retained_taxis=int(ret_t_rows.size),
        retained_requests=int(ret_r_rows.size),
        pairs_scored=int(new_t_rows.size) * n_requests
        + int(ret_t_rows.size) * int(new_r_rows.size),
        full_pairs=n_taxis * n_requests,
    )

    # Addresses are unique among live objects, so the unstable default
    # sort yields the same permutation as a stable one, faster.
    addr_rows = np.argsort(addrs).astype(np.intp, copy=False)
    taxi_addr_rows = np.argsort(taxi_addrs).astype(np.intp, copy=False)
    new_state = FrameSolveState(
        req_ids=req_ids,
        req_addr_sorted=addrs[addr_rows],
        req_addr_rows=addr_rows,
        req_objs=list(requests),
        pick_xy=pick_xy,
        party=party,
        trip=trip,
        matched_req_addr=np.sort(addrs[matched_rows[1]]),
        taxi_ids=taxi_ids,
        taxi_addr_sorted=taxi_addrs[taxi_addr_rows],
        taxi_addr_rows=taxi_addr_rows,
        taxi_objs=list(taxis),
        taxi_xy=taxi_xy,
        taxi_seats=seats,
        matched_taxi_addr=np.sort(taxi_addrs[matched_rows[0]]),
    )
    return matching, matched_rows, stats, new_state
