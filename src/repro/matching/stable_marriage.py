"""Classic Stable Marriage (complete, equal-sized lists).

The reference Gale–Shapley algorithm [12] the paper builds on, plus the
dummy-completion construction from the proof of Theorem 1: an unequal
market with dummy entries is turned into a classic ``(|R|+|T|)``-a-side
marriage instance whose stable matchings project onto the original
market's.  The completion is used by tests to certify the thresholded
algorithms against the textbook theory.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.errors import PreferenceError
from repro.matching.preferences import PreferenceTable
from repro.matching.result import Matching

__all__ = ["gale_shapley", "complete_with_dummies", "project_completed_matching"]


def gale_shapley(
    proposer_prefs: Mapping[int, Sequence[int]],
    reviewer_prefs: Mapping[int, Sequence[int]],
) -> dict[int, int]:
    """Textbook Gale–Shapley on complete, equal-sized preference lists.

    Returns the proposer-optimal stable matching as proposer → reviewer.
    Raises :class:`PreferenceError` when lists are not complete
    permutations of the opposite side.
    """
    proposers = sorted(proposer_prefs)
    reviewers = sorted(reviewer_prefs)
    if len(proposers) != len(reviewers):
        raise PreferenceError(
            f"classic SMP needs equal sides, got {len(proposers)} vs {len(reviewers)}"
        )
    reviewer_set = set(reviewers)
    proposer_set = set(proposers)
    for p in proposers:
        if set(proposer_prefs[p]) != reviewer_set:
            raise PreferenceError(f"proposer {p} does not rank every reviewer")
    for r in reviewers:
        if set(reviewer_prefs[r]) != proposer_set:
            raise PreferenceError(f"reviewer {r} does not rank every proposer")

    rank = {r: {p: k for k, p in enumerate(reviewer_prefs[r])} for r in reviewers}
    next_choice = {p: 0 for p in proposers}
    partner_of_reviewer: dict[int, int] = {}
    free = list(reversed(proposers))
    while free:
        p = free.pop()
        r = proposer_prefs[p][next_choice[p]]
        next_choice[p] += 1
        held = partner_of_reviewer.get(r)
        if held is None:
            partner_of_reviewer[r] = p
        elif rank[r][p] < rank[r][held]:
            partner_of_reviewer[r] = p
            free.append(held)
        else:
            free.append(p)
    return {p: r for r, p in partner_of_reviewer.items()}


# Dummy ids are offset into a disjoint range so they can never collide
# with real ids; callers should keep real ids below this bound.
DUMMY_ID_BASE = 10**9


def complete_with_dummies(table: PreferenceTable) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
    """Theorem 1's construction: a classic SMP instance of size |R|+|T|.

    * ``|T|`` dummy proposers replace the dummy entry of each reviewer;
    * ``|R|`` dummy reviewers replace the dummy entry of each proposer;
    * dummies prefer non-dummies over dummies; order within each tier is
      by id (any fixed order proves the theorem);
    * unacceptable real partners are appended after the dummy block, so
      they remain below the dummy exactly as in the thresholded market.
    """
    real_proposers = sorted(table.proposer_prefs)
    real_reviewers = sorted(table.reviewer_prefs)
    dummy_proposers = [DUMMY_ID_BASE + i for i in range(len(real_reviewers))]
    dummy_reviewers = [DUMMY_ID_BASE + j for j in range(len(real_proposers))]

    proposer_prefs: dict[int, list[int]] = {}
    for p in real_proposers:
        acceptable = list(table.proposer_prefs[p])
        unacceptable = [r for r in real_reviewers if r not in set(acceptable)]
        proposer_prefs[p] = acceptable + dummy_reviewers + unacceptable

    reviewer_prefs: dict[int, list[int]] = {}
    for r in real_reviewers:
        acceptable = list(table.reviewer_prefs[r])
        unacceptable = [p for p in real_proposers if p not in set(acceptable)]
        reviewer_prefs[r] = acceptable + dummy_proposers + unacceptable

    for dp in dummy_proposers:
        proposer_prefs[dp] = real_reviewers + dummy_reviewers
    for dr in dummy_reviewers:
        reviewer_prefs[dr] = real_proposers + dummy_proposers
    return proposer_prefs, reviewer_prefs


def project_completed_matching(completed: Mapping[int, int]) -> Matching:
    """Drop dummy pairs from a completed-market matching (Theorem 1)."""
    return Matching(
        {
            p: r
            for p, r in completed.items()
            if p < DUMMY_ID_BASE and r < DUMMY_ID_BASE
        }
    )
