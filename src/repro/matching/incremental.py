"""Warm-start incremental matching across dispatch frames.

Consecutive frames of the city simulation share most of their market:
idle taxis that stayed idle have not moved, and queued requests are
frozen facts.  This module turns that overlap into work savings at two
layers, both proven bit-identical to the cold path.

**1. Incremental preference construction.**  The key structural fact is
a corollary of stability (the same blocking-pair argument behind the
paper's Theorem 2): in any stable matching, an unmatched request and an
unmatched taxi are never mutually acceptable — otherwise both prefer
each other to their dummies and the pair blocks.  Between frames the
matched pairs leave *together* (the taxi drives off with its
passenger), so the entities that survive into the next frame are
exactly the previously-unmatched ones — and among those, **no
acceptable pair exists**.  The whole next frame's edge set therefore
touches at least one *changed* entity:

* edges from **newly idle taxis** (arrived at fresh positions) to every
  current request, and
* edges from **retained taxis** to **new requests**.

:func:`incremental_nonsharing_arrays` computes only those two distance
strips — O(churn · market) instead of O(market²) — and packs them
through the same CSR tail (:func:`repro.matching.preferences.
arrays_from_pairs`) as the cold builder, so the resulting
:class:`~repro.matching.arrays.PreferenceArrays` is *structurally
identical* to a cold rebuild, not merely equivalent.  Entities that
violate the invariant's preconditions are simply reclassified as "new"
and their strips recomputed: a taxi that moved (repositioning), a taxi
or request whose id reappears after being matched, a request whose
frozen fields changed.  Correctness never depends on trusting the
caller's churn description — only on the previous matching having been
stable for the previous frame, which the caller asserts by constructing
:class:`WarmFrameState` from a stable matching.

**2. Resumable deferred acceptance.**  :func:`resume_deferred_acceptance`
re-runs Algorithm 1 from the previous frame's final state instead of
from scratch.  A seeded state is safe to resume when it is *reachable*
by some execution of Gale–Shapley on the new instance; by McVitie–Wilson
order-independence, running any reachable state to quiescence yields the
proposer-optimal matching.  The checked preconditions are:

* a proposer removed while its holding reviewer stays would revert that
  reviewer to its dummy and invalidate past refusals — rejected
  (:class:`~repro.core.errors.WarmStartError`);
* every retained proposer's *proposed prefix* must survive verbatim
  (same surviving reviewers, same order, no new entries spliced in
  before the cursor) — new reviewers behind the cursor are fine, the
  proposer just resumes;
* every retained reviewer's preference order restricted to retained
  proposers must be unchanged, so past refusal justifications
  (``rank(suitor) < rank(holder)``) survive the re-ranking caused by
  entries appearing or disappearing elsewhere in its list.

Counters of a resumed run cover only post-resume work — they are the
one place warm and cold runs legitimately differ (the matching itself
never does), which the property suite asserts.

In the frame-sequence use the two layers compose degenerately: matched
pairs depart, so the seed never carries a held pair and every surviving
proposer's prefix survivor set is empty — the "resume" is a cold solve
over a churn-sized market, which is exactly where the wall-clock goes.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import DispatchConfig
from repro.core.errors import PreferenceError, WarmStartError
from repro.core.types import PassengerRequest, Taxi
from repro.geometry.batch import oracle_paired, oracle_pairwise
from repro.geometry.distance import DistanceOracle
from repro.matching.arrays import NO_PARTNER, UNRANKED, PreferenceArrays
from repro.matching.deferred_acceptance import DeferredAcceptanceStats
from repro.matching.preferences import _checked_alphas, arrays_from_pairs
from repro.matching.result import Matching

__all__ = [
    "FrameChurn",
    "IncrementalBuildStats",
    "WarmFrameState",
    "WarmDAState",
    "classify_frame_churn",
    "incremental_nonsharing_arrays",
    "deferred_acceptance_resumable",
    "resume_deferred_acceptance",
]

#: Frozen identity of a taxi for churn classification: position, seats
#: and the driver's fare coefficient — everything its preference rows
#: depend on.  Any difference reclassifies the taxi as "new".
_TaxiKey = tuple[float, float, int, float]

#: Frozen identity of a request: pickup, dropoff and party size.
_RequestKey = tuple[float, float, float, float, int]


def _taxi_key(taxi: Taxi, alpha: float) -> _TaxiKey:
    return (taxi.location.x, taxi.location.y, taxi.seats, alpha)


def _request_key(request: PassengerRequest) -> _RequestKey:
    return (
        request.pickup.x,
        request.pickup.y,
        request.dropoff.x,
        request.dropoff.y,
        request.passengers,
    )


@dataclass(frozen=True, slots=True)
class FrameChurn:
    """One frame's entity delta, as positions into the new sequences."""

    retained_taxis: np.ndarray
    new_taxis: np.ndarray
    retained_requests: np.ndarray
    new_requests: np.ndarray


@dataclass(frozen=True, slots=True)
class IncrementalBuildStats:
    """Accounting for one incremental preference build.

    ``pairs_scored`` counts the candidate pairs whose distances were
    actually computed this frame; ``full_pairs`` is what a cold build
    would have scored.  Their ratio is the frame's *rebuild fraction* —
    1.0 means the warm build saved nothing, 0.0 means a fully static
    frame.
    """

    n_taxis: int
    n_requests: int
    retained_taxis: int
    retained_requests: int
    pairs_scored: int
    full_pairs: int

    @property
    def rebuild_fraction(self) -> float:
        """Fraction of the dense pair block actually scored this frame
        (``pairs_scored / full_pairs``; 0.0 on an empty frame) — the
        ``warm_rebuild_fraction`` telemetry field."""
        if self.full_pairs == 0:
            return 0.0
        return self.pairs_scored / self.full_pairs


@dataclass(slots=True)
class WarmDAState:
    """Final deferred-acceptance state of one solved market.

    ``proposed[p]`` is the number of proposals proposer ``p`` made
    (its cursor, relative to its CSR segment); ``partner[r]`` the
    proposer index reviewer ``r`` holds (:data:`~repro.matching.arrays.
    NO_PARTNER` for the dummy).  Together with the arrays themselves
    this is everything :func:`resume_deferred_acceptance` needs.
    """

    arrays: PreferenceArrays
    proposed: np.ndarray
    partner: np.ndarray


@dataclass(slots=True)
class WarmFrameState:
    """What a warm-started dispatcher carries from one frame to the next.

    Constructed from a frame's market and its **stable** matching; the
    stability of that matching is the sole trust assumption of the
    incremental builder (see the module docstring).  ``da_state`` is
    optional — the builder only needs the keys and matched-id sets.
    """

    taxi_keys: dict[int, _TaxiKey]
    request_keys: dict[int, _RequestKey]
    matched_taxi_ids: frozenset[int]
    matched_request_ids: frozenset[int]
    da_state: WarmDAState | None = None

    @classmethod
    def from_frame(
        cls,
        taxis: Sequence[Taxi],
        requests: Sequence[PassengerRequest],
        matching: Matching,
        *,
        alphas: Mapping[int, float],
        da_state: WarmDAState | None = None,
    ) -> "WarmFrameState":
        """Snapshot a solved frame.  ``matching`` maps request → taxi ids
        and must be stable for the frame's market."""
        return cls(
            taxi_keys={t.taxi_id: _taxi_key(t, alphas[t.taxi_id]) for t in taxis},
            request_keys={r.request_id: _request_key(r) for r in requests},
            matched_taxi_ids=frozenset(t for _, t in matching.pairs),
            matched_request_ids=frozenset(p for p, _ in matching.pairs),
            da_state=da_state,
        )


def classify_frame_churn(
    state: WarmFrameState,
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    *,
    alphas: Mapping[int, float],
) -> FrameChurn:
    """Split the new frame's entities into retained and new.

    *Retained* means: present in the previous frame, **unmatched** by
    its stable matching, and bit-identical in every field the
    preference model reads.  Everything else — new arrivals, moved
    taxis, entities whose ids reappear after being matched — is "new"
    and gets its distances recomputed, which keeps the no-retained-edges
    invariant sound without trusting the caller's bookkeeping.
    """
    retained_t: list[int] = []
    new_t: list[int] = []
    for i, taxi in enumerate(taxis):
        stored = state.taxi_keys.get(taxi.taxi_id)
        if (
            stored is not None
            and taxi.taxi_id not in state.matched_taxi_ids
            and stored == _taxi_key(taxi, alphas[taxi.taxi_id])
        ):
            retained_t.append(i)
        else:
            new_t.append(i)
    retained_r: list[int] = []
    new_r: list[int] = []
    for j, request in enumerate(requests):
        stored_r = state.request_keys.get(request.request_id)
        if (
            stored_r is not None
            and request.request_id not in state.matched_request_ids
            and stored_r == _request_key(request)
        ):
            retained_r.append(j)
        else:
            new_r.append(j)
    return FrameChurn(
        retained_taxis=np.array(retained_t, dtype=np.intp),
        new_taxis=np.array(new_t, dtype=np.intp),
        retained_requests=np.array(retained_r, dtype=np.intp),
        new_requests=np.array(new_r, dtype=np.intp),
    )


def incremental_nonsharing_arrays(
    state: WarmFrameState,
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig | None = None,
    *,
    alpha_by_taxi: Mapping[int, float] | None = None,
    trip_km: np.ndarray | None = None,
    churn: FrameChurn | None = None,
) -> tuple[PreferenceArrays, IncrementalBuildStats]:
    """The same market as :func:`~repro.matching.preferences.
    build_nonsharing_arrays`, built from churn-sized distance strips.

    Requires ``state`` to come from a **stable** matching of the
    previous frame under the *same* oracle and config; under that
    precondition the retained × retained block is provably empty (see
    the module docstring) and the result is bit-identical to a cold
    build.  ``trip_km`` optionally injects cached per-request trip
    distances in request order, exactly as the cold builder accepts;
    ``churn`` injects a classification the caller already computed
    (it must be :func:`classify_frame_churn` of the same inputs).
    """
    config = config if config is not None else DispatchConfig()
    alphas = _checked_alphas(taxis, requests, config, alpha_by_taxi)
    if churn is None:
        churn = classify_frame_churn(state, taxis, requests, alphas=alphas)

    n_taxis, n_requests = len(taxis), len(requests)
    if trip_km is not None:
        trip = np.asarray(trip_km, dtype=np.float64)
        if trip.shape != (n_requests,):
            raise PreferenceError(f"trip_km has shape {trip.shape}, expected ({n_requests},)")
    elif n_requests:
        trip = oracle_paired(
            oracle,
            sources=[r.pickup for r in requests],
            targets=[r.dropoff for r in requests],
            exact=True,
        )
    else:
        trip = np.empty(0, dtype=np.float64)

    seats = np.array([t.seats for t in taxis], dtype=np.int64)
    party = np.array([r.passengers for r in requests], dtype=np.int64)
    alpha_arr = np.array([alphas[t.taxi_id] for t in taxis], dtype=np.float64)
    pickups = [r.pickup for r in requests]

    strips: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    # Strip A: newly idle taxis see every current request.
    if len(churn.new_taxis) and n_requests:
        matrix = oracle_pairwise(
            oracle,
            sources=[taxis[i].location for i in churn.new_taxis.tolist()],
            targets=pickups,
            exact=True,
        )
        ti_a = np.repeat(churn.new_taxis, n_requests)
        rj_a = np.tile(np.arange(n_requests, dtype=np.intp), len(churn.new_taxis))
        strips.append((ti_a, rj_a, matrix.ravel()))
    # Strip B: retained taxis see only the new requests.
    if len(churn.retained_taxis) and len(churn.new_requests):
        matrix = oracle_pairwise(
            oracle,
            sources=[taxis[i].location for i in churn.retained_taxis.tolist()],
            targets=[requests[j].pickup for j in churn.new_requests.tolist()],
            exact=True,
        )
        ti_b = np.repeat(churn.retained_taxis, len(churn.new_requests))
        rj_b = np.tile(churn.new_requests, len(churn.retained_taxis))
        strips.append((ti_b, rj_b, matrix.ravel()))

    if strips:
        ti = np.concatenate([s[0] for s in strips])
        rj = np.concatenate([s[1] for s in strips])
        pick = np.concatenate([s[2] for s in strips]).astype(np.float64, copy=False)
    else:
        ti = np.empty(0, dtype=np.intp)
        rj = np.empty(0, dtype=np.intp)
        pick = np.empty(0, dtype=np.float64)

    # Identical acceptability predicate to the cold pipeline: threshold
    # first (rejects NaN too), then seats and the driver-side cut.
    keep = np.flatnonzero(pick <= config.passenger_threshold_km)
    ti, rj, pick = ti[keep], rj[keep], pick[keep]
    driver = pick - alpha_arr[ti] * trip[rj]
    ok = (
        (party[rj] <= seats[ti])
        & np.isfinite(pick)
        & np.isfinite(driver)
        & (driver <= config.taxi_threshold_km)
    )
    arrays = arrays_from_pairs(
        taxis, requests, rj=rj[ok], ti=ti[ok], pick=pick[ok], driver=driver[ok]
    )
    pairs_scored = len(churn.new_taxis) * n_requests + len(churn.retained_taxis) * len(
        churn.new_requests
    )
    stats = IncrementalBuildStats(
        n_taxis=n_taxis,
        n_requests=n_requests,
        retained_taxis=len(churn.retained_taxis),
        retained_requests=len(churn.retained_requests),
        pairs_scored=pairs_scored,
        full_pairs=n_taxis * n_requests,
    )
    return arrays, stats


# -- resumable deferred acceptance ----------------------------------------


def _run_rounds(
    arrays: PreferenceArrays,
    next_choice: np.ndarray,
    current_partner: np.ndarray,
    current_rank: np.ndarray,
    free: np.ndarray,
) -> tuple[int, int]:
    """The batched proposal rounds of Algorithm 1, from any valid state.

    Mutates the state arrays in place and returns the proposal/refusal
    counters for the work performed *by this call* (a resumed run counts
    only post-resume work).  The loop body is the same reduction as
    :func:`~repro.matching.deferred_acceptance.deferred_acceptance_arrays`.
    """
    pref = arrays.proposer_list
    pref_rank = arrays.proposer_list_rank
    ends = arrays.proposer_indptr[1:]

    proposals = 0
    refusals = 0
    while free.size:
        active = free[next_choice[free] < ends[free]]
        if active.size == 0:
            break
        edges = next_choice[active]
        reviewers = pref[edges].astype(np.int64)
        ranks = pref_rank[edges].astype(np.int64)
        next_choice[active] += 1
        proposals += int(active.size)
        np.minimum.at(current_rank, reviewers, ranks)
        won = ranks == current_rank[reviewers]
        winners = active[won]
        win_reviewers = reviewers[won]
        holders = current_partner[win_reviewers]
        displaced = holders[holders != NO_PARTNER]
        current_partner[win_reviewers] = winners
        refusals += int(active.size - winners.size) + int(displaced.size)
        free = np.concatenate((active[~won], displaced))
    return proposals, refusals


def _matching_from_partner(arrays: PreferenceArrays, current_partner: np.ndarray) -> Matching:
    matched_reviewers = np.flatnonzero(current_partner != NO_PARTNER)
    matched_proposers = current_partner[matched_reviewers]
    return Matching(
        {
            int(arrays.proposer_ids[p]): int(arrays.reviewer_ids[r])
            for p, r in zip(matched_proposers.tolist(), matched_reviewers.tolist())
        }
    )


def deferred_acceptance_resumable(
    arrays: PreferenceArrays,
) -> tuple[Matching, DeferredAcceptanceStats, WarmDAState]:
    """A cold Algorithm-1 solve that also returns its final state.

    The matching and counters are bit-identical to
    :func:`~repro.matching.deferred_acceptance.deferred_acceptance_arrays`;
    the extra :class:`WarmDAState` seeds a later
    :func:`resume_deferred_acceptance` on a changed instance.
    """
    indptr = arrays.proposer_indptr
    next_choice = indptr[:-1].copy()
    current_partner = np.full(arrays.n_reviewers, NO_PARTNER, dtype=np.int64)
    current_rank = np.full(arrays.n_reviewers, np.int64(UNRANKED), dtype=np.int64)
    free = np.arange(arrays.n_proposers, dtype=np.int64)
    proposals, refusals = _run_rounds(arrays, next_choice, current_partner, current_rank, free)
    matching = _matching_from_partner(arrays, current_partner)
    stats = DeferredAcceptanceStats(
        proposals=proposals, refusals=refusals, matched_pairs=matching.size
    )
    state = WarmDAState(
        arrays=arrays,
        proposed=next_choice - indptr[:-1],
        partner=current_partner,
    )
    return matching, stats, state


def _segment_within(counts: np.ndarray) -> np.ndarray:
    """``[0..c0), [0..c1), ...`` concatenated — offsets within segments."""
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(counts.sum())
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def resume_deferred_acceptance(
    state: WarmDAState,
    arrays: PreferenceArrays,
    *,
    retained_proposer_ids: "frozenset[int] | set[int] | None" = None,
    retained_reviewer_ids: "frozenset[int] | set[int] | None" = None,
) -> tuple[Matching, DeferredAcceptanceStats, WarmDAState]:
    """Resume Algorithm 1 on a changed instance from a previous solution.

    Validates that the carried state is *reachable* on ``arrays`` (see
    the module docstring for the precondition list) and then runs the
    proposal rounds to quiescence.  The returned matching is the
    proposer-optimal stable matching of ``arrays`` — bit-identical to a
    cold solve — while the counters cover only the resumed work.

    By default an entity in both instances with the same id is treated
    as the *same* entity.  ``retained_proposer_ids`` /
    ``retained_reviewer_ids`` restrict that identity: an id outside the
    set is treated as a departed entity whose new appearance is a brand
    new participant (the frame pipeline passes the churn
    classification's retained sets here, so a taxi that finished a trip
    within one frame and re-idles under its old id is correctly a new
    reviewer, not a stale holder).  Soundness never depends on these
    sets being right — a misclassified entity trips the prefix or
    reviewer-order precondition instead of corrupting the result.

    Raises
    ------
    WarmStartError
        When a precondition fails; the caller should fall back to a
        cold solve.  ``reason`` tags the failing rule for telemetry.
    """
    old = state.arrays

    old_pid = old.proposer_ids
    old_rid = old.reviewer_ids
    new_p_index = {int(pid): p for p, pid in enumerate(arrays.proposer_ids)}
    new_r_index = {int(rid): r for r, rid in enumerate(arrays.reviewer_ids)}

    # Old-index → new-index maps (-1 for departed entities).
    p_map = np.array(
        [
            new_p_index.get(int(pid), -1)
            if retained_proposer_ids is None or int(pid) in retained_proposer_ids
            else -1
            for pid in old_pid
        ],
        dtype=np.int64,
    )
    r_map = np.array(
        [
            new_r_index.get(int(rid), -1)
            if retained_reviewer_ids is None or int(rid) in retained_reviewer_ids
            else -1
            for rid in old_rid
        ],
        dtype=np.int64,
    )

    # Rule 1: a held proposer may not vanish while its reviewer stays —
    # the reviewer would revert to its dummy and past refusals at it
    # would lose their justification.
    held = state.partner  # (R_old,) proposer old-index or NO_PARTNER
    for r_old in np.flatnonzero(held != NO_PARTNER).tolist():
        if r_map[r_old] >= 0 and p_map[held[r_old]] < 0:
            raise WarmStartError(
                f"held proposer {int(old_pid[held[r_old]])} removed while reviewer "
                f"{int(old_rid[r_old])} remains",
                reason="holder-removed",
            )

    # Rule 2: every retained proposer's proposed prefix must survive
    # verbatim — surviving reviewers in the same order, nothing spliced
    # in before the cursor.
    retained_p = np.flatnonzero(p_map >= 0)
    n_old_edges = len(old.proposer_list)
    if n_old_edges:
        old_owner = np.repeat(
            np.arange(old.n_proposers, dtype=np.int64), np.diff(old.proposer_indptr)
        )
        edge_within = np.arange(n_old_edges, dtype=np.int64) - old.proposer_indptr[old_owner]
        in_prefix = edge_within < state.proposed[old_owner]
    else:
        old_owner = np.empty(0, dtype=np.int64)
        in_prefix = np.empty(0, dtype=bool)
    retained_mask = p_map[old_owner] >= 0 if n_old_edges else np.empty(0, dtype=bool)
    survives = (r_map[old.proposer_list] >= 0) if n_old_edges else np.empty(0, dtype=bool)
    prefix_mask = in_prefix & retained_mask & survives
    # Survivor prefix entries, CSR-ordered, mapped to new reviewer indices.
    expected = r_map[old.proposer_list[prefix_mask]]
    counts_old = np.bincount(old_owner[prefix_mask], minlength=old.n_proposers)
    counts_sel = counts_old[retained_p]
    p_new = p_map[retained_p]
    new_seg_len = (arrays.proposer_indptr[1:] - arrays.proposer_indptr[:-1])[p_new]
    if np.any(counts_sel > new_seg_len):
        raise WarmStartError(
            "a retained proposer's proposed prefix shrank below its survivor count",
            reason="prefix-changed",
        )
    take = np.repeat(arrays.proposer_indptr[:-1][p_new], counts_sel) + _segment_within(
        counts_sel
    )
    actual = arrays.proposer_list[take.astype(np.int64)].astype(np.int64)
    if not np.array_equal(expected, actual):
        raise WarmStartError(
            "a retained proposer's proposed prefix changed (new or reordered "
            "entries under the cursor)",
            reason="prefix-changed",
        )

    # Rule 3: each retained reviewer's order over retained proposers is
    # unchanged, so past refusal justifications survive re-ranking.
    retained_r = np.flatnonzero(r_map >= 0)
    if n_old_edges:
        old_r_owner = np.repeat(
            np.arange(old.n_reviewers, dtype=np.int64), np.diff(old.reviewer_indptr)
        )
        mask_old = (r_map[old_r_owner] >= 0) & (p_map[old.reviewer_list] >= 0)
        old_filtered = p_map[old.reviewer_list[mask_old]]
        old_groups = r_map[old_r_owner[mask_old]]
    else:
        old_filtered = np.empty(0, dtype=np.int64)
        old_groups = np.empty(0, dtype=np.int64)
    n_new_edges = len(arrays.reviewer_list)
    if n_new_edges:
        new_r_owner = np.repeat(
            np.arange(arrays.n_reviewers, dtype=np.int64), np.diff(arrays.reviewer_indptr)
        )
        # Membership flags in *new* coordinates, derived from the same
        # maps as the old side so both sides agree on who is retained.
        new_p_retained = np.zeros(arrays.n_proposers, dtype=bool)
        new_p_retained[p_map[retained_p]] = True
        new_r_retained = np.zeros(arrays.n_reviewers, dtype=bool)
        new_r_retained[r_map[retained_r]] = True
        mask_new = new_p_retained[arrays.reviewer_list] & new_r_retained[new_r_owner]
        new_filtered = arrays.reviewer_list[mask_new].astype(np.int64)
        new_groups = new_r_owner[mask_new]
    else:
        new_filtered = np.empty(0, dtype=np.int64)
        new_groups = np.empty(0, dtype=np.int64)
    if not (
        np.array_equal(old_filtered, new_filtered) and np.array_equal(old_groups, new_groups)
    ):
        raise WarmStartError(
            "a retained reviewer's order over retained proposers changed",
            reason="reviewer-order-changed",
        )

    # Seed the state in new coordinates.
    next_choice = arrays.proposer_indptr[:-1].copy()
    next_choice[p_new] += counts_sel
    current_partner = np.full(arrays.n_reviewers, NO_PARTNER, dtype=np.int64)
    current_rank = np.full(arrays.n_reviewers, np.int64(UNRANKED), dtype=np.int64)
    for r_old in np.flatnonzero(held != NO_PARTNER).tolist():
        r_new = int(r_map[r_old])
        if r_new < 0:
            continue  # reviewer departed: its holder resumes from its cursor
        p_held = int(p_map[held[r_old]])
        rank = int(arrays.reviewer_rank[r_new, p_held])
        if rank == UNRANKED:
            raise WarmStartError(
                f"held edge ({int(old_pid[held[r_old]])}, {int(old_rid[r_old])}) "
                "is no longer acceptable",
                reason="held-edge-removed",
            )
        current_partner[r_new] = p_held
        current_rank[r_new] = rank

    held_proposers = set(current_partner[current_partner != NO_PARTNER].tolist())
    free = np.array(
        [p for p in range(arrays.n_proposers) if p not in held_proposers],
        dtype=np.int64,
    )
    proposals, refusals = _run_rounds(arrays, next_choice, current_partner, current_rank, free)
    matching = _matching_from_partner(arrays, current_partner)
    stats = DeferredAcceptanceStats(
        proposals=proposals, refusals=refusals, matched_pairs=matching.size
    )
    new_state = WarmDAState(
        arrays=arrays,
        proposed=next_choice - arrays.proposer_indptr[:-1],
        partner=current_partner,
    )
    return matching, stats, new_state
