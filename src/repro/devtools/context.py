"""Per-file analysis context shared by every rule.

One :class:`FileContext` is built per linted file: the parsed AST, raw
source lines, and an import-alias table that lets rules resolve names
like ``np.random.seed`` or ``t.sleep`` back to the canonical dotted
path (``numpy.random.seed``, ``time.sleep``) regardless of how the
module was imported.  Rules stay purely syntactic otherwise — no code
is executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.devtools.findings import Finding

__all__ = ["FileContext"]


@dataclass(slots=True)
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: local name -> canonical dotted prefix, e.g. ``np -> numpy``,
    #: ``sleep -> time.sleep`` (from ``from time import sleep``).
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, source: str, tree: ast.Module) -> "FileContext":
        ctx = cls(path=path, source=source, tree=tree, lines=source.splitlines())
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    ctx.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    ctx.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return ctx

    def snippet(self, node: ast.AST) -> str:
        """The first source line of ``node``, stripped, for reports."""
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def dotted_name(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, alias-expanded.

        ``np.random.seed`` -> ``numpy.random.seed`` under ``import numpy
        as np``; ``sleep`` -> ``time.sleep`` under ``from time import
        sleep``.  Returns ``None`` for anything that is not a plain
        attribute chain rooted at a name (calls, subscripts, ...).
        """
        parts: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def finding(
        self, rule: str, message: str, node: ast.AST, *, snippet: bool = True
    ) -> Finding:
        """A :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            rule=rule,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            snippet=self.snippet(node) if snippet else "",
        )
