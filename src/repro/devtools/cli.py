"""The ``repro-lint`` command line.

Usage::

    repro-lint src/                      # human-readable, exit 1 on findings
    repro-lint --format json src/        # machine-readable report
    repro-lint --format sarif src/       # SARIF 2.1.0 for code scanning
    repro-lint --select REP001,REP005 …  # subset of rules
    repro-lint --list-rules              # rule ids, summaries, conventions
    repro-lint --changed-only a.py -- src/
                                         # analyze all of src/, report a.py

``--changed-only`` narrows *reporting*, not *analysis*: the project
context (call graph, mutation summaries, exception flow) is still built
over every positional path, so cross-file rules judge the named files
with full context.  Pair it with ``git diff --name-only`` for a fast
pre-push gate — see ``scripts/run_static_checks.sh --changed-only``.

Also reachable without installation as ``python -m repro.devtools``.
Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence

from repro.devtools.engine import lint_paths
from repro.devtools.findings import LintReport
from repro.devtools.registry import all_rules

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Repo-specific invariant lints for the dispatch core.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif for code-scanning upload)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--changed-only",
        nargs="+",
        metavar="FILE",
        help=(
            "report findings only for these files; the positional paths "
            "(after --) are still fully analyzed for cross-file context"
        ),
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings waived by suppression comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _narrow_to(report: LintReport, files: Sequence[str]) -> None:
    """Drop findings outside ``files`` (paths compared after normpath)."""
    focus = {os.path.normpath(path) for path in files}
    report.findings = [
        f for f in report.findings if os.path.normpath(f.path) in focus
    ]
    report.suppressed = [
        f for f in report.suppressed if os.path.normpath(f.path) in focus
    ]


def _print_rules() -> None:
    for rule_id, cls in all_rules().items():
        print(f"{rule_id}  {cls.summary}")
        print(f"        {cls.convention}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2
    select = [part.strip() for part in args.select.split(",")] if args.select else None
    try:
        report = lint_paths(args.paths, select=select)
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if args.changed_only:
        _narrow_to(report, args.changed_only)

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
        return 0 if report.ok else 1

    if args.format == "sarif":
        from repro.devtools.sarif import report_to_sarif

        print(json.dumps(report_to_sarif(report), indent=2))
        return 0 if report.ok else 1

    for finding in report.findings:
        print(finding.render())
        if finding.snippet:
            print(f"    {finding.snippet}")
    if args.show_suppressed:
        for finding in report.suppressed:
            print(finding.render())
    counts = report.counts()
    summary = (
        ", ".join(f"{rule}: {count}" for rule, count in counts.items())
        if counts
        else "clean"
    )
    print(
        f"repro-lint: {report.files_checked} files, {len(report.findings)} findings "
        f"({summary}), {len(report.suppressed)} suppressed"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
