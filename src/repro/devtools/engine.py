"""Lint orchestration: walk files, run rules, apply suppressions."""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import replace
from pathlib import Path

from repro.devtools.context import FileContext
from repro.devtools.findings import META_RULE_ID, Finding, LintReport
from repro.devtools.registry import all_rules
from repro.devtools.suppressions import SuppressionIndex

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

#: Directory names never descended into when expanding path arguments.
_SKIPPED_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".pytest_cache"}


def _selected_rules(select: Sequence[str] | None) -> list[object]:
    registry = all_rules()
    if select is None:
        return [cls() for cls in registry.values()]
    unknown = [rule_id for rule_id in select if rule_id.upper() not in registry]
    if unknown:
        raise ValueError(f"unknown lint rule ids: {', '.join(sorted(unknown))}")
    return [registry[rule_id.upper()]() for rule_id in select]


def lint_source(
    source: str, path: str = "<string>", *, select: Sequence[str] | None = None
) -> LintReport:
    """Lint one source string; the core everything else wraps."""
    report = LintReport(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                rule=META_RULE_ID,
                message=f"file does not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        )
        return report
    ctx = FileContext.build(path, source, tree)
    suppressions = SuppressionIndex(source, path)
    report.findings.extend(suppressions.malformed)
    for rule in _selected_rules(select):
        for finding in rule.check(ctx):
            waiver = suppressions.lookup(finding.rule, finding.line)
            if waiver is None:
                report.findings.append(finding)
            else:
                report.suppressed.append(replace(finding, suppression_reason=waiver.reason))
    report.sort()
    return report


def lint_file(path: Path, *, select: Sequence[str] | None = None) -> LintReport:
    """Lint one file on disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        report = LintReport(files_checked=1)
        report.findings.append(
            Finding(
                rule=META_RULE_ID,
                message=f"file is unreadable: {exc}",
                path=str(path),
                line=1,
            )
        )
        return report
    return lint_source(source, str(path), select=select)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIPPED_DIRS.intersection(candidate.parts):
                    seen.add(candidate)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def lint_paths(
    paths: Iterable[str | Path], *, select: Sequence[str] | None = None
) -> LintReport:
    """Lint every Python file under ``paths``; the CLI's workhorse."""
    report = LintReport()
    for path in iter_python_files(paths):
        report.extend(lint_file(path, select=select))
    report.sort()
    return report
