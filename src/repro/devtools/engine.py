"""Lint orchestration: walk files, run rules, apply suppressions.

Since PR 9 the engine is project-wide: every file of the run is parsed
first, a single :class:`~repro.devtools.project.ProjectContext` is
built over all of them (symbol table, call graph, mutation summaries),
and rules then run in two tiers — the classic per-file ``check(ctx)``
pass and an optional ``project_check(project)`` pass whose findings may
land in any file of the run.  Suppressions stay per-file and per-line;
the engine additionally tracks which directives actually waived a
finding, so stale ``disable=`` comments are reported as
:data:`~repro.devtools.findings.META_RULE_ID` findings instead of
silently rotting.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import replace
from pathlib import Path

from repro.devtools.context import FileContext
from repro.devtools.findings import META_RULE_ID, Finding, LintReport
from repro.devtools.project import ProjectContext
from repro.devtools.registry import all_rules
from repro.devtools.suppressions import SuppressionIndex

__all__ = ["lint_source", "lint_sources", "lint_file", "lint_paths", "iter_python_files"]

#: Directory names never descended into when expanding path arguments.
_SKIPPED_DIRS = {".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".pytest_cache"}


def _selected_rules(select: Sequence[str] | None) -> list[object]:
    registry = all_rules()
    if select is None:
        return [cls() for cls in registry.values()]
    unknown = [rule_id for rule_id in select if rule_id.upper() not in registry]
    if unknown:
        raise ValueError(f"unknown lint rule ids: {', '.join(sorted(unknown))}")
    return [registry[rule_id.upper()]() for rule_id in select]


def lint_sources(
    entries: Sequence[tuple[str, str]], *, select: Sequence[str] | None = None
) -> LintReport:
    """Lint ``(path, source)`` pairs as one project; the core of every run.

    All parseable files feed one shared :class:`ProjectContext`, so the
    interprocedural rules see cross-file calls exactly when the files
    are linted together (the CI gate lints all of ``src/`` at once).
    """
    rules = _selected_rules(select)
    selected_ids = {rule.rule_id for rule in rules}  # type: ignore[attr-defined]
    registered_ids = set(all_rules())
    report = LintReport(files_checked=len(entries))
    contexts: list[FileContext] = []
    indexes: dict[str, SuppressionIndex] = {}
    used: set[tuple[int, str]] = set()  # (id(suppression), rule id) pairs that waived

    for path, source in entries:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.findings.append(
                Finding(
                    rule=META_RULE_ID,
                    message=f"file does not parse: {exc.msg}",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                )
            )
            continue
        contexts.append(FileContext.build(path, source, tree))
        index = SuppressionIndex(source, path)
        indexes[path] = index
        report.findings.extend(index.malformed)

    project = ProjectContext.build(contexts)

    def emit(finding: Finding) -> None:
        index = indexes.get(finding.path)
        waiver = index.lookup(finding.rule, finding.line) if index is not None else None
        if waiver is None:
            report.findings.append(finding)
        else:
            used.add((id(waiver), finding.rule))
            report.suppressed.append(replace(finding, suppression_reason=waiver.reason))

    for rule in rules:
        check = getattr(rule, "check", None)
        if check is not None:
            for ctx in contexts:
                for finding in check(ctx):
                    emit(finding)
        project_check = getattr(rule, "project_check", None)
        if project_check is not None:
            for finding in project_check(project):
                emit(finding)

    # Stale-suppression audit: a directive rule id that ran in this
    # invocation but waived nothing is dead weight; one naming a rule id
    # that does not exist at all is a typo.  Ids for *registered but not
    # selected* rules are left alone — a partial `--select` run cannot
    # tell whether they would have fired.
    for path, index in indexes.items():
        ctx_lines = project.context_for(path).lines if path in project.contexts else []
        for suppression in index.suppressions:
            for rule_id in sorted(suppression.rules):
                if rule_id in registered_ids:
                    if rule_id not in selected_ids or (id(suppression), rule_id) in used:
                        continue
                    message = (
                        f"unused suppression: {rule_id} does not fire here; "
                        "delete the directive or narrow its rule list"
                    )
                else:
                    message = (
                        f"suppression names unknown rule id {rule_id}; "
                        "it waives nothing"
                    )
                snippet = ""
                if 1 <= suppression.line <= len(ctx_lines):
                    snippet = ctx_lines[suppression.line - 1].strip()
                report.findings.append(
                    Finding(
                        rule=META_RULE_ID,
                        message=message,
                        path=path,
                        line=suppression.line,
                        snippet=snippet,
                    )
                )

    report.sort()
    return report


def lint_source(
    source: str, path: str = "<string>", *, select: Sequence[str] | None = None
) -> LintReport:
    """Lint one source string (a one-file project)."""
    return lint_sources([(path, source)], select=select)


def lint_file(path: Path, *, select: Sequence[str] | None = None) -> LintReport:
    """Lint one file on disk (a one-file project)."""
    reports = lint_paths([path], select=select)
    if reports.files_checked == 0:
        reports.files_checked = 1
    return reports


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIPPED_DIRS.intersection(candidate.parts):
                    seen.add(candidate)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def lint_paths(
    paths: Iterable[str | Path], *, select: Sequence[str] | None = None
) -> LintReport:
    """Lint every Python file under ``paths`` as one project."""
    entries: list[tuple[str, str]] = []
    unreadable: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            entries.append((str(path), path.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError) as exc:
            unreadable.append(
                Finding(
                    rule=META_RULE_ID,
                    message=f"file is unreadable: {exc}",
                    path=str(path),
                    line=1,
                )
            )
    report = lint_sources(entries, select=select)
    if unreadable:
        report.findings.extend(unreadable)
        report.files_checked += len(unreadable)
        report.sort()
    return report
