"""Structured lint results: findings, suppressed findings, reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Finding", "LintReport", "META_RULE_ID"]

#: Rule id used for diagnostics about the lint run itself (unparseable
#: files, malformed suppression comments).  Meta findings cannot be
#: suppressed.
META_RULE_ID = "REP000"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``line``/``col`` are 1-based line and 0-based column, matching
    :mod:`ast` node coordinates.  ``suppression_reason`` is only set on
    findings that were waived by a reasoned suppression comment (those
    live in :attr:`LintReport.suppressed`, not :attr:`LintReport.findings`).
    """

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    snippet: str = ""
    suppression_reason: str = ""

    def render(self) -> str:
        """Human-readable one-liner, ``path:line:col: RULE message``."""
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"
        if self.suppression_reason:
            text += f" [suppressed: {self.suppression_reason}]"
        return text

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable dict, stable key order."""
        payload: dict[str, Any] = {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }
        if self.snippet:
            payload["snippet"] = self.snippet
        if self.suppression_reason:
            payload["suppression_reason"] = self.suppression_reason
        return payload


@dataclass(slots=True)
class LintReport:
    """Everything one lint run produced.

    ``findings`` are the live violations (non-empty means the gate
    fails); ``suppressed`` are violations waived by reasoned
    suppression comments, kept for auditability.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no live findings)."""
        return not self.findings

    def counts(self) -> dict[str, int]:
        """Live findings per rule id, sorted by rule id."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def sort(self) -> None:
        """Order findings by (path, line, col, rule) for stable output."""
        key = lambda f: (f.path, f.line, f.col, f.rule)  # noqa: E731
        self.findings.sort(key=key)
        self.suppressed.sort(key=key)

    def extend(self, other: LintReport) -> None:
        """Fold another report (e.g. one file's) into this one."""
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked

    def to_json(self) -> dict[str, Any]:
        """JSON document for ``repro-lint --format json``."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "counts": self.counts(),
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
        }
