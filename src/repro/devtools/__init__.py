"""`repro-lint`: repo-specific static analysis for the dispatch core.

The reproduction's correctness claims rest on conventions no general
linter knows about: bit-reproducible determinism (seeded RNGs, virtual
clocks), the batched-kernel source-row convention, cooperative
``checkpoint()`` calls inside dispatcher loops, and typed budget errors
that must never be swallowed.  This package mechanizes those invariants
as AST lint rules (stdlib :mod:`ast` only — no new runtime
dependencies) so they are enforced on every push instead of re-found in
review.

Public surface:

* :func:`lint_paths` — lint files/directories, returning a
  :class:`LintReport`;
* :class:`Finding` / :class:`LintReport` — structured results;
* :data:`all_rules` — the registered rule classes, by rule id;
* ``python -m repro.devtools`` / the ``repro-lint`` console script —
  the CLI (JSON or human-readable output).

Each rule documents the convention it guards and which PR introduced
it; see ``DESIGN.md`` §9 for the full table.  Individual findings can
be waived in place with a reasoned suppression comment::

    time.sleep(delay)  # repro-lint: disable=REP001 virtualized by chaos tests

A suppression without a reason is itself a finding (``REP000``): every
waiver must say why the invariant does not apply.
"""

from __future__ import annotations

from repro.devtools.engine import lint_paths, lint_source
from repro.devtools.findings import Finding, LintReport
from repro.devtools.registry import all_rules

__all__ = ["Finding", "LintReport", "all_rules", "lint_paths", "lint_source"]
