"""Project-wide analysis context: symbols, mutations, calls, exceptions.

One :class:`ProjectContext` is built per lint run over *all* files in
that run.  Where :class:`~repro.devtools.context.FileContext` answers
purely per-file questions (aliases, snippets), this module answers the
cross-module ones the interprocedural rules need:

* a **module/symbol table** — every top-level function and class of
  every linted file, addressable by importable dotted name, so a call
  like ``sharding._solve_shard_payload`` resolves to the function node
  it names even from another file;
* **per-class attribute-mutation summaries** — every ``self.x = ...``
  site per class (plain/augmented/subscript assignment, loop and
  ``with`` targets, and mutating method calls like
  ``self._recent.append(...)``), including sites inside helper methods,
  which is what lets REP008 see state drift a single method would hide;
* an **alias-aware call graph** — calls resolved through import
  aliases, same-module lookup, ``self.method`` dispatch, and a
  CHA-lite fallback (all project methods sharing the attribute name),
  the precision tier that is sound for "may this raise?" questions;
* a **budget-exception flow pass** — a fixpoint over the call graph
  computing which typed budget errors each function may let escape,
  with ``try`` handler guards applied per call site (REP004's
  interprocedural upgrade);
* an **RNG seed-flow index** — generator constructions whose seed is a
  ``None``-defaulted parameter, joined against every project call site
  that omits the argument (REP002's interprocedural upgrade).

Everything is still pure :mod:`ast` — no imports of the analyzed code,
no execution.  Resolution is deliberately conservative where it must
be: a call that cannot be resolved into the project is assumed able to
raise budget errors when it targets project-rooted or unknown local
callables, and assumed inert when it clearly targets the stdlib or a
third-party module.
"""

from __future__ import annotations

import ast
import builtins
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.context import FileContext

__all__ = [
    "BUDGET_ERROR_NAMES",
    "BROAD_CATCHES",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "MutationSite",
    "ProjectContext",
    "module_name_for_path",
]

#: The typed budget errors whose flow REP004 tracks (PR 3).
BUDGET_ERROR_NAMES = ("FrameBudgetExceededError", "EnumerationBudgetError")

#: Exception classes that catch budget errors without naming them,
#: mapped to the budget errors each one is able to swallow.
BROAD_CATCHES: dict[str, tuple[str, ...]] = {
    "BaseException": BUDGET_ERROR_NAMES,
    "Exception": BUDGET_ERROR_NAMES,
    "ReproError": BUDGET_ERROR_NAMES,
    "MatchingError": ("EnumerationBudgetError",),
}

#: Method names that mutate their receiver in place; a call
#: ``self.x.append(...)`` is a mutation site of attribute ``x``.  RNG
#: draw methods are included deliberately: drawing advances the
#: generator's state, which is exactly the kind of silent drift REP008
#: exists to catch (an unpersisted ``self._rng`` resumes mid-stream).
_MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert",
        "add", "update", "setdefault", "pop", "popleft", "popitem",
        "remove", "discard", "clear", "sort", "reverse",
        "setstate", "seed", "shuffle", "setflags", "fill", "resize",
        "__setitem__",
        # random.Random / numpy Generator draw methods
        "random", "randint", "randrange", "getrandbits", "choice",
        "choices", "sample", "uniform", "gauss", "normalvariate",
        "expovariate", "betavariate", "integers", "standard_normal",
        "normal", "permutation", "exponential", "poisson",
    }
)

_BUILTIN_NAMES = frozenset(dir(builtins))

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def module_name_for_path(path: str) -> str:
    """Importable dotted module name for a linted file path.

    ``src/repro/matching/sharding.py`` → ``repro.matching.sharding``
    (everything after the last ``src`` component); paths without a
    ``src`` component fall back to their stem, which keeps single-file
    runs (fixtures, ``lint_source``) self-consistent.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if not parts:
        return "<unknown>"
    if parts[-1] == "__init__":
        parts = parts[:-1] or ["<unknown>"]
    dotted = ".".join(part for part in parts if part)
    return dotted if "src" not in (parts[0],) else dotted


@dataclass(frozen=True, slots=True)
class MutationSite:
    """One place a class mutates one of its own attributes."""

    attr: str
    method: str
    kind: str  # "assign" | "augassign" | "item" | "call" | "loop" | "with" | "del"
    node: ast.AST


@dataclass(slots=True)
class CallSite:
    """One call expression, pre-resolved against the project."""

    node: ast.Call
    #: Project functions this call may target (CHA-lite: possibly
    #: several).  Empty with ``unknown=False`` means "provably external
    #: and inert"; empty with ``unknown=True`` means "could be anything".
    targets: list["FunctionInfo"]
    unknown: bool


@dataclass(slots=True)
class FunctionInfo:
    """One function or method of the project."""

    name: str
    qualname: str  # "Class.method" or plain "function"
    module: str
    path: str
    node: _FunctionNode
    class_name: str | None = None
    #: Parameter names in call order, ``self``/``cls`` excluded for methods.
    params: list[str] = field(default_factory=list)
    #: Parameter name -> default expression node (only params that have one).
    defaults: dict[str, ast.expr] = field(default_factory=dict)
    #: Keyword-only parameter names (subset of ``params``).
    kwonly: frozenset[str] = frozenset()
    #: Call sites inside this function, resolved (filled by the builder).
    calls: list[CallSite] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


class ClassInfo:
    """One class of the project, with its attribute-mutation summary."""

    def __init__(self, name: str, module: str, path: str, node: ast.ClassDef):
        self.name = name
        self.module = module
        self.path = path
        self.node = node
        self.bases: list[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                self.bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                self.bases.append(base.attr)
        self.methods: dict[str, FunctionInfo] = {}
        #: attr -> every ``self.attr`` mutation site anywhere in the class.
        self.mutations: dict[str, list[MutationSite]] = {}
        #: class-level ``NAME = ...`` / ``NAME: T = ...`` statements.
        self.class_attrs: dict[str, ast.stmt] = {}

    # -- mutation summary queries -----------------------------------------

    def mutated_attrs(self, *, exclude_methods: Iterable[str] = ()) -> dict[str, list[MutationSite]]:
        """Mutation summary restricted to sites outside ``exclude_methods``."""
        skip = set(exclude_methods)
        out: dict[str, list[MutationSite]] = {}
        for attr, sites in self.mutations.items():
            kept = [site for site in sites if site.method not in skip]
            if kept:
                out[attr] = kept
        return out

    def attrs_mutated_in(self, methods: Iterable[str]) -> set[str]:
        """Attributes mutated by any of the given methods."""
        wanted = set(methods)
        return {
            attr
            for attr, sites in self.mutations.items()
            if any(site.method in wanted for site in sites)
        }

    # -- self-call reachability -------------------------------------------

    def self_calls_of(self, method: str) -> set[str]:
        """Names of ``self.x(...)`` calls made directly by ``method``."""
        fn = self.methods.get(method)
        if fn is None:
            return set()
        called: set[str] = set()
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                called.add(node.func.attr)
        return called

    def self_call_closure(self, roots: Iterable[str]) -> set[str]:
        """Methods reachable from ``roots`` via ``self.x()`` calls (incl. roots)."""
        seen: set[str] = set()
        frontier = [root for root in roots if root in self.methods]
        while frontier:
            method = frontier.pop()
            if method in seen:
                continue
            seen.add(method)
            for callee in self.self_calls_of(method):
                if callee in self.methods and callee not in seen:
                    frontier.append(callee)
        return seen

    def attr_loads(self, methods: Iterable[str]) -> set[str]:
        """Attributes read (``self.attr`` in Load context) by the methods."""
        loads: set[str] = set()
        for method in methods:
            fn = self.methods.get(method)
            if fn is None:
                continue
            for node in ast.walk(fn.node):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    loads.add(node.attr)
        return loads


class ProjectContext:
    """Cross-file symbol table, call graph, and dataflow summaries."""

    def __init__(self) -> None:
        self.contexts: dict[str, FileContext] = {}
        #: importable module name -> path (first wins on collisions).
        self.module_paths: dict[str, str] = {}
        #: module name -> top-level function name -> FunctionInfo.
        self.module_functions: dict[str, dict[str, FunctionInfo]] = {}
        #: module name -> class name -> ClassInfo.
        self.module_classes: dict[str, dict[str, ClassInfo]] = {}
        self.functions: list[FunctionInfo] = []
        self.classes: list[ClassInfo] = []
        #: CHA-lite dispatch: method name -> every project method so named.
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        #: function -> budget errors it may let escape (fixpoint result).
        self._budget_raises: dict[int, frozenset[str]] = {}
        #: reverse call index: id(FunctionInfo) -> [(caller, call node)].
        self.callers: dict[int, list[tuple[FunctionInfo, ast.Call]]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "ProjectContext":
        project = cls()
        for ctx in contexts:
            project._index_file(ctx)
        project._resolve_calls()
        project._solve_budget_raises()
        return project

    def _index_file(self, ctx: FileContext) -> None:
        module = module_name_for_path(ctx.path)
        self.contexts[ctx.path] = ctx
        self.module_paths.setdefault(module, ctx.path)
        functions = self.module_functions.setdefault(module, {})
        classes = self.module_classes.setdefault(module, {})
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(stmt, module, ctx.path, None)
                functions.setdefault(stmt.name, info)
                self.functions.append(info)
            elif isinstance(stmt, ast.ClassDef):
                cinfo = self._class_info(stmt, module, ctx.path)
                classes.setdefault(stmt.name, cinfo)
                self.classes.append(cinfo)

    def _function_info(
        self, node: _FunctionNode, module: str, path: str, class_name: str | None
    ) -> FunctionInfo:
        args = node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if class_name is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        kwonly = [a.arg for a in args.kwonlyargs]
        defaults: dict[str, ast.expr] = {}
        positional_defaults = args.defaults
        if positional_defaults:
            for name, default in zip(names[-len(positional_defaults):], positional_defaults):
                defaults[name] = default
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                defaults[arg.arg] = default
        qualname = node.name if class_name is None else f"{class_name}.{node.name}"
        return FunctionInfo(
            name=node.name,
            qualname=qualname,
            module=module,
            path=path,
            node=node,
            class_name=class_name,
            params=names + kwonly,
            defaults=defaults,
            kwonly=frozenset(kwonly),
        )

    def _class_info(self, node: ast.ClassDef, module: str, path: str) -> ClassInfo:
        cinfo = ClassInfo(node.name, module, path, node)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._function_info(stmt, module, path, node.name)
                cinfo.methods[stmt.name] = info
                self.functions.append(info)
                self.methods_by_name.setdefault(stmt.name, []).append(info)
                self._summarize_mutations(cinfo, info)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cinfo.class_attrs[target.id] = stmt
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cinfo.class_attrs[stmt.target.id] = stmt
        return cinfo

    # -- mutation summaries ------------------------------------------------

    @staticmethod
    def _self_attr(node: ast.expr) -> str | None:
        """``x`` when ``node`` is exactly ``self.x``, else ``None``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _summarize_mutations(self, cinfo: ClassInfo, fn: FunctionInfo) -> None:
        def record(attr: str | None, kind: str, node: ast.AST) -> None:
            if attr is not None:
                cinfo.mutations.setdefault(attr, []).append(
                    MutationSite(attr=attr, method=fn.name, kind=kind, node=node)
                )

        def record_target(target: ast.expr, kind: str, node: ast.AST) -> None:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    record_target(element, kind, node)
                return
            if isinstance(target, ast.Starred):
                record_target(target.value, kind, node)
                return
            record(self._self_attr(target), kind, node)
            # self.x[k] = v mutates x (the container), not a new binding
            if isinstance(target, ast.Subscript):
                record(self._self_attr(target.value), "item", node)

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record_target(target, "assign", node)
            elif isinstance(node, ast.AnnAssign):
                record_target(node.target, "assign", node)
            elif isinstance(node, ast.AugAssign):
                record(self._self_attr(node.target), "augassign", node)
                if isinstance(node.target, ast.Subscript):
                    record(self._self_attr(node.target.value), "item", node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                record_target(node.target, "loop", node)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        record_target(item.optional_vars, "with", node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    record(self._self_attr(target), "del", node)
                    if isinstance(target, ast.Subscript):
                        record(self._self_attr(target.value), "del", node)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                ):
                    record(self._self_attr(func.value), "call", node)

    # -- call resolution ---------------------------------------------------

    def lookup_module_symbol(self, dotted: str) -> FunctionInfo | ClassInfo | None:
        """Resolve a canonical dotted name to a project symbol, if linted."""
        module, _, symbol = dotted.rpartition(".")
        if not module:
            return None
        functions = self.module_functions.get(module)
        if functions and symbol in functions:
            return functions[symbol]
        classes = self.module_classes.get(module)
        if classes and symbol in classes:
            return classes[symbol]
        return None

    def _project_roots(self) -> set[str]:
        return {module.split(".")[0] for module in self.module_paths}

    def _cha_targets(self, method_name: str) -> list[FunctionInfo]:
        """CHA-lite dispatch set for an unresolved ``obj.method()`` call.

        Dunder names are excluded: ``super().__init__()`` (whose
        receiver is a call, not a name) would otherwise union every
        constructor in the project into one dispatch set and drown the
        exception-flow lattice in false may-raise edges.
        """
        if method_name.startswith("__") and method_name.endswith("__"):
            return []
        return self.methods_by_name.get(method_name, [])

    def resolve_call(
        self, call: ast.Call, ctx: FileContext, enclosing_class: ClassInfo | None
    ) -> CallSite:
        """Best-effort resolution of one call against the project.

        Targets are the project functions the call may reach;
        ``unknown=True`` marks calls that could reach arbitrary code
        (callbacks, project-rooted imports outside the linted set), the
        case conservative consumers treat as "may raise anything".
        """
        func = call.func
        targets: list[FunctionInfo] = []
        unknown = False
        if isinstance(func, ast.Name):
            name = func.id
            canonical = ctx.aliases.get(name)
            if canonical is not None:
                symbol = self.lookup_module_symbol(canonical)
                if isinstance(symbol, FunctionInfo):
                    targets.append(symbol)
                elif isinstance(symbol, ClassInfo):
                    init = symbol.methods.get("__init__")
                    if init is not None:
                        targets.append(init)
                elif canonical.split(".")[0] in self._project_roots():
                    unknown = True  # project-rooted but not in this run
            else:
                module = module_name_for_path(ctx.path)
                local = self.module_functions.get(module, {}).get(name)
                local_cls = self.module_classes.get(module, {}).get(name)
                if local is not None:
                    targets.append(local)
                elif local_cls is not None:
                    init = local_cls.methods.get("__init__")
                    if init is not None:
                        targets.append(init)
                elif name not in _BUILTIN_NAMES:
                    unknown = True  # a local variable / parameter callable
        elif isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self" and enclosing_class is not None:
                own = enclosing_class.methods.get(func.attr)
                if own is not None:
                    targets.append(own)
                else:
                    # inherited (or dynamically provided): CHA-lite
                    targets.extend(self._cha_targets(func.attr))
            else:
                dotted = ctx.dotted_name(func)
                symbol = self.lookup_module_symbol(dotted) if dotted else None
                if isinstance(symbol, FunctionInfo):
                    targets.append(symbol)
                elif isinstance(symbol, ClassInfo):
                    init = symbol.methods.get("__init__")
                    if init is not None:
                        targets.append(init)
                else:
                    # obj.method(): every project method of that name
                    targets.extend(self._cha_targets(func.attr))
        else:
            unknown = True  # computed callables: f()(), (a or b)(), ...
        return CallSite(node=call, targets=targets, unknown=unknown)

    def _resolve_calls(self) -> None:
        class_of: dict[tuple[str, str | None], ClassInfo | None] = {}
        for fn in self.functions:
            key = (fn.path, fn.class_name)
            if key not in class_of:
                cinfo = None
                if fn.class_name is not None:
                    module = module_name_for_path(fn.path)
                    cinfo = self.module_classes.get(module, {}).get(fn.class_name)
                class_of[key] = cinfo
            ctx = self.contexts[fn.path]
            enclosing = class_of[key]
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    site = self.resolve_call(node, ctx, enclosing)
                    fn.calls.append(site)
                    for target in site.targets:
                        self.callers.setdefault(id(target), []).append((fn, node))

    # -- budget-exception flow ---------------------------------------------

    @staticmethod
    def handler_catches(handler: ast.ExceptHandler) -> frozenset[str]:
        """Budget errors the handler absorbs (empty if it re-raises bare)."""
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Raise) and sub.exc is None:
                return frozenset()  # bare re-raise: the error still escapes
        node = handler.type
        if node is None:
            return frozenset(BUDGET_ERROR_NAMES)
        exprs = node.elts if isinstance(node, ast.Tuple) else [node]
        caught: set[str] = set()
        for expr in exprs:
            name = None
            if isinstance(expr, ast.Name):
                name = expr.id
            elif isinstance(expr, ast.Attribute):
                name = expr.attr
            if name in BUDGET_ERROR_NAMES:
                caught.add(name)
            elif name in BROAD_CATCHES:
                caught.update(BROAD_CATCHES[name])
        return frozenset(caught)

    def _escaping_from(
        self,
        stmts: Iterable[ast.stmt],
        fn: FunctionInfo,
        current: dict[int, frozenset[str]],
    ) -> frozenset[str]:
        """Budget errors escaping a statement list, given current raise sets."""
        site_by_call = {id(site.node): site for site in fn.calls}
        escaping: set[str] = set()

        def visit(node: ast.AST, guards: frozenset[str]) -> None:
            if isinstance(node, ast.Try):
                for stmt in node.body:
                    visit(stmt, guards | self._try_guard(node))
                for handler in node.handlers:
                    # handler bodies run outside the try's own guard
                    for stmt in handler.body:
                        visit(stmt, guards)
                for stmt in node.orelse + node.finalbody:
                    visit(stmt, guards)
                return
            if isinstance(node, ast.Raise) and node.exc is not None:
                name = None
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                if isinstance(exc, ast.Name):
                    name = exc.id
                elif isinstance(exc, ast.Attribute):
                    name = exc.attr
                if name in BUDGET_ERROR_NAMES and name not in guards:
                    escaping.add(name)
            if isinstance(node, ast.Call):
                site = site_by_call.get(id(node))
                if site is not None:
                    escaping.update(self._site_raises(site, current) - guards)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return  # nested scopes raise only when called
            for child in ast.iter_child_nodes(node):
                visit(child, guards)

        for stmt in stmts:
            visit(stmt, frozenset())
        return frozenset(escaping)

    def _try_guard(self, node: ast.Try) -> frozenset[str]:
        guard: set[str] = set()
        for handler in node.handlers:
            guard.update(self.handler_catches(handler))
        return frozenset(guard)

    def _site_raises(
        self, site: CallSite, current: dict[int, frozenset[str]]
    ) -> frozenset[str]:
        if site.unknown:
            return frozenset(BUDGET_ERROR_NAMES)
        raised: set[str] = set()
        for target in site.targets:
            raised.update(current.get(id(target), frozenset()))
        return frozenset(raised)

    def _solve_budget_raises(self) -> None:
        current: dict[int, frozenset[str]] = {id(fn): frozenset() for fn in self.functions}
        # Monotone fixpoint; the lattice height (2 errors) bounds useful
        # iterations by the call-graph depth, the cap is a safety net.
        for _ in range(32):
            changed = False
            for fn in self.functions:
                escaped = self._escaping_from(fn.node.body, fn, current)
                if escaped != current[id(fn)]:
                    current[id(fn)] = escaped
                    changed = True
            if not changed:
                break
        self._budget_raises = current

    def budget_raises(self, fn: FunctionInfo) -> frozenset[str]:
        """Budget errors ``fn`` may let escape to its caller."""
        return self._budget_raises.get(id(fn), frozenset())

    def escaping_budget_errors(
        self, stmts: Sequence[ast.stmt], fn: FunctionInfo
    ) -> frozenset[str]:
        """Budget errors that may escape a statement list of ``fn``.

        Used on ``try`` bodies: nested handlers inside ``stmts`` are
        honoured, call sites use the converged interprocedural sets.
        """
        return self._escaping_from(stmts, fn, self._budget_raises)

    # -- convenience -------------------------------------------------------

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions

    def iter_classes(self) -> Iterator[ClassInfo]:
        yield from self.classes

    def context_for(self, path: str) -> FileContext:
        return self.contexts[path]

    def class_for_function(self, fn: FunctionInfo) -> ClassInfo | None:
        if fn.class_name is None:
            return None
        module = module_name_for_path(fn.path)
        return self.module_classes.get(module, {}).get(fn.class_name)

    def call_site_omits(self, call: ast.Call, target: FunctionInfo, param: str) -> bool:
        """Whether ``call`` leaves ``param`` of ``target`` unbound.

        Positional counting excludes ``self`` for methods (already
        stripped from ``target.params``).  ``*args``/``**kwargs`` at the
        call site make the answer unknowable; they count as provided.
        """
        if any(isinstance(arg, ast.Starred) for arg in call.args):
            return False
        if any(kw.arg is None for kw in call.keywords):
            return False
        if any(kw.arg == param for kw in call.keywords):
            return False
        if param in target.kwonly:
            return True
        try:
            index = target.params.index(param)
        except ValueError:
            return True
        return len(call.args) <= index
