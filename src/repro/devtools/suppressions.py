"""Reasoned per-line suppression comments.

A finding is waived by a comment of the form::

    expr()  # repro-lint: disable=REP001 virtual clock drives this path
    # repro-lint: disable=REP004,REP006 scalar fallback documented in §6
    next_line_statement()

The comment applies to findings reported on its own physical line and —
when it is a standalone comment line — to the next line as well (the
usual place for statements too long to share a line with a comment).
Multiple rule ids are comma-separated.  The free text after the rule
list is the *reason* and is mandatory: a bare ``disable=`` waives
nothing and is itself reported as a :data:`~repro.devtools.findings.META_RULE_ID`
finding, so every waiver in the tree says why the invariant does not
apply at that site.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass
from io import StringIO

from repro.devtools.findings import META_RULE_ID, Finding

__all__ = ["Suppression", "SuppressionIndex"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]*?)(?:\s+(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``disable=`` directive."""

    line: int
    rules: frozenset[str]
    reason: str
    standalone: bool  # comment-only line: also covers the next line


class SuppressionIndex:
    """All directives of one file, queryable by (rule, line)."""

    def __init__(self, source: str, path: str):
        self.path = path
        self.suppressions: list[Suppression] = []
        self.malformed: list[Finding] = []
        self._by_line: dict[int, list[Suppression]] = {}
        self._parse(source)

    def _parse(self, source: str) -> None:
        try:
            tokens = list(tokenize.generate_tokens(StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            # The AST pass reports the syntax error; nothing to index.
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            rules = frozenset(
                rule.strip().upper() for rule in match.group("rules").split(",") if rule.strip()
            )
            reason = (match.group("reason") or "").strip()
            standalone = token.line.lstrip().startswith("#")
            if not rules or not reason:
                self.malformed.append(
                    Finding(
                        rule=META_RULE_ID,
                        message=(
                            "suppression comment needs both rule ids and a reason: "
                            "`# repro-lint: disable=REPnnn <why this site is exempt>`"
                        ),
                        path=self.path,
                        line=line,
                        col=token.start[1],
                        snippet=token.string.strip(),
                    )
                )
                continue
            suppression = Suppression(line=line, rules=rules, reason=reason, standalone=standalone)
            self.suppressions.append(suppression)
            self._by_line.setdefault(line, []).append(suppression)
            if standalone:
                self._by_line.setdefault(line + 1, []).append(suppression)

    def lookup(self, rule: str, line: int) -> Suppression | None:
        """The suppression covering ``rule`` at ``line``, if any.

        Meta findings (:data:`META_RULE_ID`) are never suppressible —
        a malformed directive must be fixed, not waived.
        """
        if rule == META_RULE_ID:
            return None
        for suppression in self._by_line.get(line, ()):
            if rule in suppression.rules:
                return suppression
        return None
