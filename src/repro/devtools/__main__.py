"""``python -m repro.devtools`` — the uninstalled face of ``repro-lint``."""

from __future__ import annotations

import sys

from repro.devtools.cli import main

if __name__ == "__main__":
    sys.exit(main())
