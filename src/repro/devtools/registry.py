"""The lint-rule registry.

A rule is a class with a ``rule_id``, a one-line ``summary``, a
``convention`` note (what repo invariant it guards, and where that
convention came from), and at least one of two check entry points:

* ``check(ctx)`` — the per-file tier, a generator over one
  :class:`~repro.devtools.context.FileContext`;
* ``project_check(project)`` — the interprocedural tier, a generator
  over the run's single
  :class:`~repro.devtools.project.ProjectContext`, whose findings may
  point into any file of the run.

A rule may implement both (REP002/REP004 keep their per-file syntax
checks and add cross-call flow on top).  Registration is a decorator so
adding a rule is one module with one class; the CLI and the engine
discover everything through :func:`all_rules`.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:
    from repro.devtools.context import FileContext
    from repro.devtools.findings import Finding
    from repro.devtools.project import ProjectContext

__all__ = ["LintRule", "register_rule", "all_rules"]


class LintRule(Protocol):
    """Structural interface every registered rule satisfies.

    The engine discovers ``check`` / ``project_check`` with ``getattr``,
    so a rule only defines the tiers it uses; the protocol lists both
    for documentation.
    """

    rule_id: str
    summary: str
    convention: str

    def check(self, ctx: "FileContext") -> Iterator["Finding"]: ...

    def project_check(self, project: "ProjectContext") -> Iterator["Finding"]: ...


_REGISTRY: dict[str, type] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to the global registry.

    Duplicate rule ids are a programming error and fail loudly — two
    rules silently sharing an id would make suppressions ambiguous.
    """
    rule_id = getattr(cls, "rule_id", "")
    if not rule_id:
        raise ValueError(f"lint rule {cls.__name__} has no rule_id")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule_id}")
    _REGISTRY[rule_id] = cls
    return cls


def all_rules() -> dict[str, type]:
    """Registered rule classes by rule id (imports the rule modules)."""
    # Importing the package registers every rule as a side effect.
    import repro.devtools.rules  # noqa: F401

    return dict(sorted(_REGISTRY.items()))
