"""SARIF 2.1.0 serialization of a lint report.

`SARIF <https://sarifweb.azurewebsites.net/>`_ is the interchange
format GitHub code scanning ingests: uploading the document produced
here renders every repro-lint finding as an inline annotation on the
pull request, with the rule's convention text as its help.  The
emitter targets the minimal subset the ingestion pipeline requires —
one run, one driver, a ``rules`` table, and one ``result`` per finding
— and additionally carries waived findings as SARIF ``suppressions``
(kind ``inSource`` with the directive's reason as the justification),
so the audit trail of reasoned waivers survives into the scanning UI
instead of disappearing at the CLI boundary.

Only :mod:`json`-ready dicts are built here; writing is the CLI's job.
"""

from __future__ import annotations

from typing import Any

from repro.devtools.findings import META_RULE_ID, Finding, LintReport
from repro.devtools.registry import all_rules

__all__ = ["report_to_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_TOOL_NAME = "repro-lint"


def _rule_descriptors() -> list[dict[str, Any]]:
    descriptors: list[dict[str, Any]] = [
        {
            "id": META_RULE_ID,
            "shortDescription": {"text": "lint-run diagnostic (unsuppressable)"},
            "fullDescription": {
                "text": (
                    "Problems with the lint run itself: unparseable files, "
                    "malformed or stale suppression directives."
                )
            },
            "defaultConfiguration": {"level": "error"},
        }
    ]
    for rule_id, cls in all_rules().items():
        descriptors.append(
            {
                "id": rule_id,
                "shortDescription": {"text": cls.summary},
                "fullDescription": {"text": cls.convention},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def _result(finding: Finding, *, suppressed: bool) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.snippet:
        location = result["locations"][0]["physicalLocation"]
        location["region"]["snippet"] = {"text": finding.snippet}
    if suppressed:
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": finding.suppression_reason,
            }
        ]
    return result


def report_to_sarif(report: LintReport) -> dict[str, Any]:
    """The full SARIF document for one lint run."""
    results = [_result(f, suppressed=False) for f in report.findings]
    results.extend(_result(f, suppressed=True) for f in report.suppressed)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        # Rule ids double as stable documentation anchors:
                        # DESIGN.md's enforced-invariants table is the
                        # authoritative reference for every REPnnn.
                        "rules": _rule_descriptors(),
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
