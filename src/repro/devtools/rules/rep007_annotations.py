"""REP007 — the public API is fully type-annotated.

The strict-typing gate runs :program:`mypy --strict` in CI, but mypy is
an optional dev dependency; this rule is the always-available floor
beneath it, enforced by ``repro-lint`` itself: every public function
and method in the library (and ``__init__``) annotates all of its
parameters, and every public function other than ``__init__`` has a
return annotation.  That keeps the ``py.typed`` promise honest even in
environments where the full gate cannot run, and guarantees mypy has
signatures to check rather than defaulting to ``Any`` at the API
boundary.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import register_rule

__all__ = ["PublicApiAnnotatedRule"]


def _is_public(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return not fn.name.startswith("_") or fn.name == "__init__"


def _missing_parameters(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    missing = [
        arg.arg
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if arg.annotation is None and arg.arg not in ("self", "cls")
    ]
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"*{args.vararg.arg}")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"**{args.kwarg.arg}")
    return missing


@register_rule
class PublicApiAnnotatedRule:
    rule_id = "REP007"
    summary = "public function or method missing type annotations"
    convention = (
        "Strict typing gate (this PR): py.typed promises full signatures; this rule "
        "is the stdlib floor beneath the optional mypy --strict run."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_body(ctx, ctx.tree.body)

    def _check_body(self, ctx: FileContext, body: list[ast.stmt]) -> Iterator[Finding]:
        # Only module- and class-level functions: locals nested inside
        # function bodies are implementation detail, not API surface.
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_body(ctx, node.body)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public(node):
                    continue
                missing = _missing_parameters(node)
                needs_return = node.returns is None and node.name != "__init__"
                if not missing and not needs_return:
                    continue
                gaps = []
                if missing:
                    gaps.append(f"parameters {', '.join(missing)}")
                if needs_return:
                    gaps.append("the return type")
                yield ctx.finding(
                    self.rule_id,
                    f"public `{node.name}` must annotate {' and '.join(gaps)} "
                    "(py.typed strict-typing gate)",
                    node,
                )
