"""The repo-specific rule set.

Importing this package registers every rule with
:mod:`repro.devtools.registry`.  One module per rule keeps each
invariant's detection logic reviewable next to the convention it
guards.
"""

from __future__ import annotations

from repro.devtools.rules import (  # noqa: F401  (imported for registration)
    rep001_wall_clock,
    rep002_seeded_rng,
    rep003_checkpoint,
    rep004_budget_errors,
    rep005_batched_sources,
    rep006_float_equality,
    rep007_annotations,
    rep008_durability,
    rep009_pool_safety,
    rep010_warm_invalidation,
)

__all__ = [
    "rep001_wall_clock",
    "rep002_seeded_rng",
    "rep003_checkpoint",
    "rep004_budget_errors",
    "rep005_batched_sources",
    "rep006_float_equality",
    "rep007_annotations",
    "rep008_durability",
    "rep009_pool_safety",
    "rep010_warm_invalidation",
]
