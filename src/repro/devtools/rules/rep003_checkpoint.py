"""REP003 — dispatch loops must checkpoint cooperatively.

The resilience layer's frame deadlines (PR 3) are *cooperative*: a
:class:`~repro.resilience.budget.FrameBudget` only fires when the
dispatcher calls ``self.checkpoint()``.  A ``dispatch`` override that
loops over taxis/requests/candidates without checkpointing can blow
straight through a frame deadline and stall the degradation ladder, so
every loop-bearing ``dispatch`` method on a Dispatcher class must call
``self.checkpoint(...)`` at least once (the call is a no-op when no
budget is installed, so instrumenting costs nothing outside the
resilience path).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import register_rule

__all__ = ["CheckpointCooperativeRule"]

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_dispatcher_class(node: ast.ClassDef) -> bool:
    return node.name.endswith("Dispatcher") or any(
        name.endswith("Dispatcher") for name in _base_names(node)
    )


def _calls_self_checkpoint(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "checkpoint"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            return True
    return False


@register_rule
class CheckpointCooperativeRule:
    rule_id = "REP003"
    summary = "loop-bearing Dispatcher.dispatch without a self.checkpoint() call"
    convention = (
        "Cooperative frame deadlines (PR 3): FrameBudget only fires at checkpoints, "
        "so every dispatch loop must call self.checkpoint()."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not _is_dispatcher_class(node):
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "dispatch"
                    and any(isinstance(sub, _LOOPS) for sub in ast.walk(item))
                    and not _calls_self_checkpoint(item)
                ):
                    yield ctx.finding(
                        self.rule_id,
                        f"{node.name}.dispatch loops without calling self.checkpoint(); "
                        "the frame deadline (FrameBudget) can only fire at checkpoints",
                        item,
                    )
