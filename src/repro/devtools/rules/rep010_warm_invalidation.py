"""REP010 — warm solver state must be invalidated when its inputs change.

The warm-start fast paths (PRs 6-7) carry solver state between
consecutive frames — :class:`FrameSolveState`, the sharded
:class:`ShardedFrameState`, and the per-frame
:class:`FrameDistanceCache` memo.  Each is a *derived* structure: it is
only valid while the inputs it was computed from stay untouched.  The
stability guarantee (Definition 1) is exactly what breaks when a
mutation slips past invalidation: the fast path happily produces a
matching with blocking pairs relative to the *current* inputs, and
only the sampling auditor (PR 8) has a chance of noticing at runtime.

This rule makes the discipline static.  Per class that owns warm state
(an attribute annotated with a warm type or assigned from a warm-state
factory):

* the **producer closure** — every method that assigns the warm
  attribute plus the helpers it calls on ``self`` — defines the
  *inputs*: the ``self`` attributes it reads, minus the warm
  attributes themselves and anything the closure also writes
  (telemetry counters written during production are outputs, not
  inputs);
* any method *outside* the lifecycle set (``__init__``, ``reset*``,
  ``invalidate*``, ``restore*``, ``shutdown*``, ``close*``,
  ``clear*``, and every helper those call) that mutates an input must
  itself reach an invalidation — write a warm attribute or call into
  the reset/invalidate closure — within its own ``self``-call closure.

A mutation the rule flags is a path that changes what the warm state
was derived from while leaving the stale derivation live for the next
frame's fast path.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.findings import Finding
from repro.devtools.project import ClassInfo, ProjectContext
from repro.devtools.registry import register_rule

__all__ = ["WarmInvalidationRule"]

#: Types whose instances are frame-derived solver state.
WARM_STATE_TYPES = ("FrameSolveState", "ShardedFrameState", "FrameDistanceCache")

#: Module-level factories that build warm state from a cold solve.
WARM_STATE_FACTORIES = ("frame_state_from_cold", "sharded_state_from_cold")

#: Method-name prefixes whose mutations are lifecycle management, not
#: input drift (they either rebuild or discard the warm state).
_LIFECYCLE_PREFIXES = (
    "__init__", "__post_init__", "reset", "invalidate", "restore",
    "shutdown", "close", "clear",
)


def _annotation_mentions_warm(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return any(name in annotation.value for name in WARM_STATE_TYPES)
    return any(
        isinstance(node, ast.Name) and node.id in WARM_STATE_TYPES
        for node in ast.walk(annotation)
    )


def _call_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


def _is_lifecycle(method: str) -> bool:
    return any(
        method == prefix or method.lstrip("_").startswith(prefix)
        for prefix in _LIFECYCLE_PREFIXES
    )


@register_rule
class WarmInvalidationRule:
    rule_id = "REP010"
    summary = "warm-state input mutated without reaching an invalidation path"
    convention = (
        "Warm-start soundness (PRs 6-7): FrameSolveState/ShardedFrameState/"
        "FrameDistanceCache are derived state; every input mutation must reset them."
    )

    def project_check(self, project: ProjectContext) -> Iterator[Finding]:
        for cinfo in project.iter_classes():
            warm_attrs = self._warm_attributes(cinfo)
            if not warm_attrs:
                continue
            yield from self._check_class(project, cinfo, warm_attrs)

    @staticmethod
    def _warm_attributes(cinfo: ClassInfo) -> set[str]:
        warm: set[str] = set()
        for name, stmt in cinfo.class_attrs.items():
            if isinstance(stmt, ast.AnnAssign) and _annotation_mentions_warm(
                stmt.annotation
            ):
                warm.add(name)
        for node in ast.walk(cinfo.node):
            if isinstance(node, ast.AnnAssign):
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and _annotation_mentions_warm(node.annotation)
                ):
                    warm.add(target.attr)
            elif isinstance(node, ast.Assign):
                if _call_name(node.value) in WARM_STATE_FACTORIES:
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            warm.add(target.attr)
        return warm

    def _check_class(
        self, project: ProjectContext, cinfo: ClassInfo, warm_attrs: set[str]
    ) -> Iterator[Finding]:
        ctx = project.context_for(cinfo.path)

        # Producers: methods that install warm state (assign a warm attr
        # something other than None).  Their closure's reads are the
        # inputs the warm state is derived from.
        producers: set[str] = set()
        for attr in warm_attrs:
            for site in cinfo.mutations.get(attr, ()):
                if site.kind == "assign" and isinstance(site.node, ast.Assign):
                    value = site.node.value
                    if isinstance(value, ast.Constant) and value.value is None:
                        continue
                if not _is_lifecycle(site.method):
                    producers.add(site.method)
        if not producers:
            return

        producer_closure = cinfo.self_call_closure(producers)
        closure_written = cinfo.attrs_mutated_in(producer_closure)
        inputs = cinfo.attr_loads(producer_closure) - warm_attrs - closure_written
        if not inputs:
            return

        lifecycle_roots = [m for m in cinfo.methods if _is_lifecycle(m)]
        lifecycle = cinfo.self_call_closure(lifecycle_roots)
        invalidators = {
            m for m in cinfo.methods if m.startswith(("reset", "invalidate"))
        }

        for attr in sorted(inputs):
            for site in cinfo.mutations.get(attr, ()):
                if site.method in lifecycle or site.method in producer_closure:
                    continue
                closure = cinfo.self_call_closure([site.method])
                reaches_invalidation = bool(closure & invalidators) or any(
                    cinfo.attrs_mutated_in([m]) & warm_attrs for m in closure
                )
                if not reaches_invalidation:
                    warm = ", ".join(sorted(warm_attrs))
                    yield ctx.finding(
                        self.rule_id,
                        f"`{cinfo.name}.{site.method}` mutates `self.{attr}`, an "
                        f"input the warm solver state ({warm}) was derived from, "
                        "without reaching a reset/invalidate path — the next "
                        "fast-path frame reuses stale state",
                        site.node,
                    )
