"""REP008 — state_payload/restore_state must round-trip mutated state.

A class that opts into checkpoint durability by defining *both*
``state_payload()`` and ``restore_state(payload)`` is promising the
crash-recovery machinery (PR 8) that a resumed run continues
bit-identically.  That promise breaks silently the day someone adds a
mutable attribute and forgets the payload: the run resumes, nothing
crashes, and the divergence surfaces frames later as a CRC mismatch —
the exact drift class the PR 8 audit fixed by hand.  This rule makes
the contract structural:

* every attribute the class mutates outside ``__init__`` /
  ``__post_init__`` / the restore path must be **read somewhere in the
  payload path** (``state_payload`` plus helpers it calls on
  ``self``), or be declared in a class-level ``DURABILITY_EXCLUSIONS``
  dict literal mapping the attribute name to a non-empty *reason*
  string — the "deliberately not persisted" decision becomes a
  reviewed declaration instead of a comment;
* every attribute the payload path reads must be **written back by the
  restore path** (assignment or an in-place mutator call such as
  ``.setstate(...)`` / ``.extend(...)``) — one-way persistence is
  drift with extra steps;
* exclusions must stay honest: an excluded attribute that is never
  mutated, or that the payload path persists anyway, is stale and is
  itself reported.

The mutation summary is project-wide and includes helper methods, so
``self._bump("warm_frames")`` deep inside a solve path still counts as
mutating ``_telemetry``.  The contract is checked on each class that
defines the method pair; subclasses that override the pair are checked
against their own mutations and declarations.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.project import ClassInfo, ProjectContext
from repro.devtools.registry import register_rule

__all__ = ["DurabilityDriftRule", "EXCLUSIONS_ATTR"]

#: Class attribute declaring attributes deliberately left out of the
#: checkpoint payload, mapped to the reason each one is safe to drop.
EXCLUSIONS_ATTR = "DURABILITY_EXCLUSIONS"

#: Methods whose mutations are construction/restore plumbing, not
#: run-time state drift.
_LIFECYCLE_METHODS = ("__init__", "__post_init__")


def _exclusion_value(stmt: ast.stmt) -> ast.expr | None:
    if isinstance(stmt, ast.Assign):
        return stmt.value
    if isinstance(stmt, ast.AnnAssign):
        return stmt.value
    return None


def _parse_exclusions(
    cinfo: ClassInfo, ctx: FileContext, rule_id: str
) -> tuple[dict[str, str], list[Finding]]:
    """The declared exclusion table and any declaration-shape findings."""
    stmt = cinfo.class_attrs.get(EXCLUSIONS_ATTR)
    if stmt is None:
        return {}, []
    value = _exclusion_value(stmt)
    findings: list[Finding] = []
    if not isinstance(value, ast.Dict):
        findings.append(
            ctx.finding(
                rule_id,
                f"{EXCLUSIONS_ATTR} must be a literal dict of "
                "{'attribute': 'reason it is safe to not persist'}",
                stmt,
            )
        )
        return {}, findings
    exclusions: dict[str, str] = {}
    for key, reason in zip(value.keys, value.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            findings.append(
                ctx.finding(
                    rule_id,
                    f"{EXCLUSIONS_ATTR} keys must be attribute-name string literals",
                    key if key is not None else stmt,
                )
            )
            continue
        if not (
            isinstance(reason, ast.Constant)
            and isinstance(reason.value, str)
            and reason.value.strip()
        ):
            findings.append(
                ctx.finding(
                    rule_id,
                    f"{EXCLUSIONS_ATTR}[{key.value!r}] needs a non-empty reason "
                    "string saying why the attribute is safe to not persist",
                    reason,
                )
            )
            continue
        exclusions[key.value] = reason.value.strip()
    return exclusions, findings


@register_rule
class DurabilityDriftRule:
    rule_id = "REP008"
    summary = "checkpointed class mutates state its payload does not round-trip"
    convention = (
        "Durable resume (PR 8): state_payload/restore_state pairs must cover every "
        "mutated attribute or declare a reasoned DURABILITY_EXCLUSIONS entry."
    )

    def project_check(self, project: ProjectContext) -> Iterator[Finding]:
        for cinfo in project.iter_classes():
            if "state_payload" not in cinfo.methods or "restore_state" not in cinfo.methods:
                continue
            ctx = project.context_for(cinfo.path)
            exclusions, shape_findings = _parse_exclusions(cinfo, ctx, self.rule_id)
            yield from shape_findings

            payload_methods = cinfo.self_call_closure(["state_payload"])
            restore_methods = cinfo.self_call_closure(["restore_state"])
            persisted = cinfo.attr_loads(payload_methods)
            restored = cinfo.attrs_mutated_in(restore_methods)
            mutated = cinfo.mutated_attrs(
                exclude_methods=set(_LIFECYCLE_METHODS) | restore_methods
            )

            for attr in sorted(mutated):
                if attr in persisted or attr in exclusions:
                    continue
                site = mutated[attr][0]
                yield ctx.finding(
                    self.rule_id,
                    f"`{cinfo.name}` mutates `self.{attr}` (here, in "
                    f"`{site.method}`) but `state_payload` never reads it and "
                    f"{EXCLUSIONS_ATTR} does not declare it — a resumed run "
                    "silently drops this state",
                    site.node,
                )

            payload_node = cinfo.methods["state_payload"].node
            for attr in sorted(persisted & set(mutated)):
                if attr not in restored:
                    yield ctx.finding(
                        self.rule_id,
                        f"`{cinfo.name}.state_payload` persists `self.{attr}` "
                        "but `restore_state` never writes it back — one-way "
                        "persistence cannot survive a resume",
                        payload_node,
                    )

            decl = cinfo.class_attrs.get(EXCLUSIONS_ATTR)
            for attr in sorted(exclusions):
                if attr in persisted:
                    yield ctx.finding(
                        self.rule_id,
                        f"{EXCLUSIONS_ATTR} declares `{attr}` not persisted, but "
                        "`state_payload` reads it — drop the stale exclusion",
                        decl if decl is not None else cinfo.node,
                    )
                elif attr not in mutated:
                    yield ctx.finding(
                        self.rule_id,
                        f"{EXCLUSIONS_ATTR} declares `{attr}`, but `{cinfo.name}` "
                        "never mutates it outside construction — drop the stale "
                        "exclusion",
                        decl if decl is not None else cinfo.node,
                    )
