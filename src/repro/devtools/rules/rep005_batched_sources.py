"""REP005 — batched kernels take explicit ``sources=`` / ``targets=``.

On an asymmetric oracle (one-way road edges) ``D(taxi, pickup)`` and
``D(pickup, taxi)`` differ, and the road network's snap-offset
association makes the order matter even bit-wise.  PR 1's review fixed
exactly this bug: batched call sites had silently passed pickups as the
matrix *rows* where the scalar reference used taxis as *sources*.  The
batch API therefore names its operands — ``pairwise(sources=...,
targets=...)`` — and every call site of the ``pairwise``/``paired``
family must pass them as keywords, so a swapped taxi/pickup pair is a
visible diff, not a latent wrong-score bug.

Only the generic fallback helpers in :mod:`repro.geometry.batch` may
delegate positionally (third-party oracles may name their parameters
differently); those two sites carry reasoned suppressions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import register_rule

__all__ = ["BatchedSourceConventionRule"]

#: Module-level helpers: first positional argument is the oracle.
_HELPERS = {"oracle_pairwise", "oracle_paired"}

#: Batch-oracle methods: no positional operands at all.
_METHODS = {"pairwise", "paired"}

_REQUIRED = ("sources", "targets")


@register_rule
class BatchedSourceConventionRule:
    rule_id = "REP005"
    summary = "pairwise/paired call without explicit sources=/targets= keywords"
    convention = (
        "Source-row convention (PR 1 review): taxis are the sources of D(taxi, pickup); "
        "batched call sites spell the operand roles out as keywords."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _HELPERS:
                name = func.id
                allowed_positional = 1  # the oracle
            elif isinstance(func, ast.Attribute) and func.attr in _METHODS:
                dotted = ctx.dotted_name(func)
                if dotted == "itertools.pairwise":  # unrelated stdlib helper
                    continue
                name = f".{func.attr}"
                allowed_positional = 0
            else:
                continue
            if any(kw.arg is None for kw in node.keywords):
                continue  # **kwargs forwarding: operands unverifiable here
            keywords = {kw.arg for kw in node.keywords}
            if len(node.args) > allowed_positional or not keywords.issuperset(_REQUIRED):
                yield ctx.finding(
                    self.rule_id,
                    f"`{name}` must name its operands — sources= (taxi side of "
                    "D(taxi, pickup)) and targets= — so the source-row order is "
                    "explicit at the call site",
                    node,
                )
