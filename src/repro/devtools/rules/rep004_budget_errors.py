"""REP004 — broad exception handlers must not swallow budget errors.

The anytime machinery (PR 3) communicates through two typed errors:
:class:`FrameBudgetExceededError` (a frame deadline fired at a
checkpoint) and :class:`EnumerationBudgetError` (an exponential
enumeration hit its work budget, carrying the partial result).  Both
must reach the resilience ladder / the caller that owns the budget.  A
bare ``except:``, ``except Exception``, or a catch of one of their
ancestors (``ReproError``; ``MatchingError`` for the enumeration
error) silently converts "out of time" into "no result", deadlocking
the degradation ladder's accounting.

Since PR 9 the rule is interprocedural: it only fires where a budget
error can actually *reach* the broad handler, computed from the
project call graph — a ``try`` body whose calls provably cannot raise
a budget error (stdlib calls, project functions whose transitive
callees never raise one) is exempt, while a helper three calls deep
that hits ``budget.checkpoint()`` taints every broad handler above it.
Calls the graph cannot resolve (callbacks, callables from outside the
linted set) count as able to raise both errors, so partial knowledge
errs toward reporting.  A broad handler stays compliant if an
*earlier* handler in the same ``try`` names every budget error that
can reach it, or if the handler body re-raises (a bare ``raise``).
Anything else needs a reasoned suppression.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.findings import Finding
from repro.devtools.project import BROAD_CATCHES, BUDGET_ERROR_NAMES, ProjectContext
from repro.devtools.registry import register_rule

__all__ = ["NoSwallowedBudgetErrorsRule"]


def _caught_names(handler: ast.ExceptHandler) -> list[str | None]:
    """Class names a handler catches; ``[None]`` for a bare ``except:``."""
    node = handler.type
    if node is None:
        return [None]
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names: list[str | None] = []
    for expr in exprs:
        if isinstance(expr, ast.Name):
            names.append(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.append(expr.attr)
    return names


def _swallowable(names: list[str | None]) -> set[str]:
    """Budget errors the handler's classes could absorb."""
    swallowed: set[str] = set()
    for name in names:
        if name is None:
            swallowed.update(BUDGET_ERROR_NAMES)
        elif name in BROAD_CATCHES:
            swallowed.update(BROAD_CATCHES[name])
    return swallowed


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None for node in ast.walk(handler)
    )


@register_rule
class NoSwallowedBudgetErrorsRule:
    rule_id = "REP004"
    summary = "broad except clause may swallow a typed budget error"
    convention = (
        "Typed budget errors (PR 3): FrameBudgetExceededError / EnumerationBudgetError "
        "must reach the resilience ladder; broad handlers must exclude or re-raise them."
    )

    def project_check(self, project: ProjectContext) -> Iterator[Finding]:
        for fn in project.iter_functions():
            ctx = project.context_for(fn.path)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Try):
                    continue
                # Errors that can arrive at this handler chain: raised
                # in the body directly, or escaping any call reachable
                # from it (the interprocedural fixpoint).  Nested trys
                # inside the body already subtracted what they catch.
                reachable = project.escaping_budget_errors(node.body, fn)
                if not reachable:
                    continue
                handled_earlier: set[str] = set()
                for handler in node.handlers:
                    names = _caught_names(handler)
                    at_risk = (_swallowable(names) & reachable) - handled_earlier
                    if at_risk and not _reraises(handler):
                        broad = next(
                            n for n in names if n is None or n in BROAD_CATCHES
                        )
                        label = "bare except" if broad is None else f"`except {broad}`"
                        yield ctx.finding(
                            self.rule_id,
                            f"{label} can swallow {', '.join(sorted(at_risk))}, which "
                            "the call graph shows can reach this handler; catch the "
                            "budget error in an earlier handler (or re-raise it) so "
                            "the resilience ladder sees it",
                            handler,
                        )
                    handled_earlier.update(n for n in names if isinstance(n, str))
