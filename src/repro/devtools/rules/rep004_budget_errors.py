"""REP004 — broad exception handlers must not swallow budget errors.

The anytime machinery (PR 3) communicates through two typed errors:
:class:`FrameBudgetExceededError` (a frame deadline fired at a
checkpoint) and :class:`EnumerationBudgetError` (an exponential
enumeration hit its work budget, carrying the partial result).  Both
must reach the resilience ladder / the caller that owns the budget.  A
bare ``except:``, ``except Exception``, or a catch of one of their
ancestors (``ReproError``; ``MatchingError`` for the enumeration
error) silently converts "out of time" into "no result", deadlocking
the degradation ladder's accounting.  Such a handler is compliant only
if an *earlier* handler in the same ``try`` names every budget error
the broad clause could swallow, or if the handler body re-raises
(a bare ``raise``).  Anything else needs a reasoned suppression.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import register_rule

__all__ = ["NoSwallowedBudgetErrorsRule"]

_BUDGET_ERRORS = ("FrameBudgetExceededError", "EnumerationBudgetError")

#: Broad classes mapped to the budget errors they are able to swallow
#: (``None`` type means a bare ``except:``).
_BROAD = {
    "BaseException": _BUDGET_ERRORS,
    "Exception": _BUDGET_ERRORS,
    "ReproError": _BUDGET_ERRORS,
    "MatchingError": ("EnumerationBudgetError",),
}


def _caught_names(handler: ast.ExceptHandler) -> list[str | None]:
    """Class names a handler catches; ``[None]`` for a bare ``except:``."""
    node = handler.type
    if node is None:
        return [None]
    exprs = node.elts if isinstance(node, ast.Tuple) else [node]
    names: list[str | None] = []
    for expr in exprs:
        if isinstance(expr, ast.Name):
            names.append(expr.id)
        elif isinstance(expr, ast.Attribute):
            names.append(expr.attr)
    return names


def _swallowable(names: list[str | None]) -> set[str]:
    """Budget errors the handler's classes could absorb."""
    swallowed: set[str] = set()
    for name in names:
        if name is None:
            swallowed.update(_BUDGET_ERRORS)
        elif name in _BROAD:
            swallowed.update(_BROAD[name])
    return swallowed


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body contains a bare ``raise``."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None for node in ast.walk(handler)
    )


@register_rule
class NoSwallowedBudgetErrorsRule:
    rule_id = "REP004"
    summary = "broad except clause may swallow a typed budget error"
    convention = (
        "Typed budget errors (PR 3): FrameBudgetExceededError / EnumerationBudgetError "
        "must reach the resilience ladder; broad handlers must exclude or re-raise them."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            handled_earlier: set[str] = set()
            for handler in node.handlers:
                names = _caught_names(handler)
                at_risk = _swallowable(names) - handled_earlier
                if at_risk and not _reraises(handler):
                    broad = next(n for n in names if n is None or n in _BROAD)
                    label = "bare except" if broad is None else f"`except {broad}`"
                    yield ctx.finding(
                        self.rule_id,
                        f"{label} can swallow {', '.join(sorted(at_risk))}; catch the "
                        "budget error in an earlier handler (or re-raise it) so the "
                        "resilience ladder sees it",
                        handler,
                    )
                handled_earlier.update(n for n in names if isinstance(n, str))
