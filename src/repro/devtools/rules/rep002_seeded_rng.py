"""REP002 — seeded generator objects only, no module-level RNG state.

Every random draw in the reproduction must come from a seeded generator
object threaded from configuration (``random.Random(seed)`` or
``numpy.random.default_rng(seed)`` / ``Generator``).  The module-level
legacy APIs (``random.random()``, ``np.random.seed`` + ``np.random.*``)
share hidden global state: any import-order change, parallel worker, or
third-party call reorders the stream and silently breaks
bit-reproducibility — and with it the stability guarantees, which
assume exact, order-stable preference evaluation (Gale–Shapley /
Roth; see PAPERS.md).

Since PR 9 the rule also checks the *seed itself*, in two tiers:

* per-file — constructing an allowed generator with no seed
  (``random.Random()``, ``default_rng()``), an explicit ``None`` seed,
  or a seed drawn from an entropy source (``os.urandom``,
  ``uuid.uuid4``, ``time.time_ns``, ...) is exactly the
  non-reproducible stream the allowed-constructor list exists to
  prevent, and is flagged at the construction site;
* project-wide — when a generator is seeded from a function parameter
  whose default is ``None``, every project call site that omits that
  argument inherits an OS-entropy stream, so the *call sites* are
  flagged (the construction itself is fine: the parameter exists
  precisely so config can thread a seed through).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.project import FunctionInfo, ProjectContext
from repro.devtools.registry import register_rule

__all__ = ["SeededRngOnlyRule"]

#: ``random`` module members that construct isolated generator objects.
_ALLOWED_STDLIB = {"Random"}

#: ``numpy.random`` members that construct or type isolated generators.
_ALLOWED_NUMPY = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Canonical dotted names that construct a generator REP002 allows —
#: and whose seed argument therefore decides reproducibility.
_GENERATOR_CTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
}

#: Canonical dotted names whose value is fresh entropy per process/call.
_ENTROPY_SOURCES = {
    "os.urandom",
    "os.getpid",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbits",
}

#: Keyword names under which the ctors above accept their seed.
_SEED_KEYWORDS = {"seed", "entropy"}


def _seed_argument(call: ast.Call) -> ast.expr | None:
    """The seed expression of a generator construction, if given."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg in _SEED_KEYWORDS:
            return keyword.value
    return None


def _forwards_arguments(call: ast.Call) -> bool:
    """Whether ``*args``/``**kwargs`` at the call defeat seed analysis."""
    return any(isinstance(arg, ast.Starred) for arg in call.args) or any(
        keyword.arg is None for keyword in call.keywords
    )


def _entropy_name(seed: ast.expr, ctx: FileContext) -> str | None:
    """The entropy source feeding ``seed``, if any (recursive)."""
    for node in ast.walk(seed):
        if isinstance(node, ast.Call):
            dotted = ctx.dotted_name(node.func)
            if dotted in _ENTROPY_SOURCES:
                return dotted
    return None


@register_rule
class SeededRngOnlyRule:
    rule_id = "REP002"
    summary = "module-level RNG API instead of a seeded generator object"
    convention = (
        "Determinism (seed state, PR 2/3): randomness comes from Random(seed) / "
        "default_rng(seed) objects threaded from config, never global module state."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_construction(ctx, node)
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            dotted = ctx.dotted_name(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            member: str | None = None
            if parts[0] == "random" and len(parts) == 2:
                if parts[1] not in _ALLOWED_STDLIB:
                    member = dotted
            elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
                if parts[2] not in _ALLOWED_NUMPY:
                    member = dotted
            if member is not None:
                yield ctx.finding(
                    self.rule_id,
                    f"`{member}` uses shared module-level RNG state; construct a "
                    "seeded generator (random.Random(seed) / numpy.random."
                    "default_rng(seed)) and thread it from config",
                    node,
                )

    def _check_construction(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        dotted = ctx.dotted_name(call.func)
        if dotted not in _GENERATOR_CTORS or _forwards_arguments(call):
            return
        seed = _seed_argument(call)
        if seed is None:
            yield ctx.finding(
                self.rule_id,
                f"`{dotted}()` constructed without a seed draws OS entropy; "
                "pass a seed threaded from config",
                call,
            )
            return
        if isinstance(seed, ast.Constant) and seed.value is None:
            yield ctx.finding(
                self.rule_id,
                f"`{dotted}(None)` is an explicit request for OS entropy; "
                "pass a seed threaded from config",
                call,
            )
            return
        entropy = _entropy_name(seed, ctx)
        if entropy is not None:
            yield ctx.finding(
                self.rule_id,
                f"seed derived from `{entropy}` is fresh entropy per run; "
                "seeds must come from config so runs are bit-reproducible",
                call,
            )

    def project_check(self, project: ProjectContext) -> Iterator[Finding]:
        # Generators seeded from a ``None``-defaulted parameter: the
        # construction is deliberate plumbing, but a call site omitting
        # the argument silently selects OS entropy — flag those.
        for fn in project.iter_functions():
            ctx = project.context_for(fn.path)
            for param in self._none_defaulted_seed_params(fn, ctx):
                for caller, call in project.callers.get(id(fn), ()):
                    if project.call_site_omits(call, fn, param):
                        call_ctx = project.context_for(caller.path)
                        yield call_ctx.finding(
                            self.rule_id,
                            f"call to `{fn.qualname}` omits `{param}`, which "
                            "defaults to None and seeds an RNG — the stream "
                            "becomes OS entropy; pass a seed from config",
                            call,
                        )

    @staticmethod
    def _none_defaulted_seed_params(fn: FunctionInfo, ctx: FileContext) -> set[str]:
        """Parameters of ``fn`` that default to None and seed a generator."""
        flagged: set[str] = set()
        none_defaulted = {
            name
            for name, default in fn.defaults.items()
            if isinstance(default, ast.Constant) and default.value is None
        }
        if not none_defaulted:
            return flagged
        # A param rebound inside the body (``if seed is None: seed = 0``)
        # no longer carries the None default by the time it seeds.
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        none_defaulted.discard(target.id)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if ctx.dotted_name(node.func) not in _GENERATOR_CTORS:
                continue
            seed = _seed_argument(node)
            # Only the bare-parameter shape is flagged: a seed *derived*
            # from the param (``seed or 0``) already handles None.
            if isinstance(seed, ast.Name) and seed.id in none_defaulted:
                flagged.add(seed.id)
        return flagged
