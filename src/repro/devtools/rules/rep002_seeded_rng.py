"""REP002 — seeded generator objects only, no module-level RNG state.

Every random draw in the reproduction must come from a seeded generator
object threaded from configuration (``random.Random(seed)`` or
``numpy.random.default_rng(seed)`` / ``Generator``).  The module-level
legacy APIs (``random.random()``, ``np.random.seed`` + ``np.random.*``)
share hidden global state: any import-order change, parallel worker, or
third-party call reorders the stream and silently breaks
bit-reproducibility — and with it the stability guarantees, which
assume exact, order-stable preference evaluation (Gale–Shapley /
Roth; see PAPERS.md).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import register_rule

__all__ = ["SeededRngOnlyRule"]

#: ``random`` module members that construct isolated generator objects.
_ALLOWED_STDLIB = {"Random"}

#: ``numpy.random`` members that construct or type isolated generators.
_ALLOWED_NUMPY = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


@register_rule
class SeededRngOnlyRule:
    rule_id = "REP002"
    summary = "module-level RNG API instead of a seeded generator object"
    convention = (
        "Determinism (seed state, PR 2/3): randomness comes from Random(seed) / "
        "default_rng(seed) objects threaded from config, never global module state."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            dotted = ctx.dotted_name(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            member: str | None = None
            if parts[0] == "random" and len(parts) == 2:
                if parts[1] not in _ALLOWED_STDLIB:
                    member = dotted
            elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
                if parts[2] not in _ALLOWED_NUMPY:
                    member = dotted
            if member is not None:
                yield ctx.finding(
                    self.rule_id,
                    f"`{member}` uses shared module-level RNG state; construct a "
                    "seeded generator (random.Random(seed) / numpy.random."
                    "default_rng(seed)) and thread it from config",
                    node,
                )
