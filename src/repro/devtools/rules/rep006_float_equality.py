"""REP006 — no ``==`` / ``!=`` on distance or score expressions.

Distances and the scores derived from them are floats produced by
kernels whose evaluation order is only *contractually* bit-identical
where the exactness contract holds (``batch_exact``); elsewhere —
Haversine trig, accumulated detours, scaled oracles — values agree to
a few ulp at best.  An exact equality on such a quantity encodes a
tie-break or feasibility decision that flips under a kernel swap,
breaking order-stable preference evaluation (the assumption behind the
paper's stability theorems).  Compare with ``<=`` against a threshold,
``math.isclose``, or an integer rank instead.  Deliberate bit-exact
assertions (equivalence tests live outside ``src/``) are not affected;
a rare in-library bit-exactness check needs a reasoned suppression.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import register_rule

__all__ = ["NoFloatEqualityRule"]

#: Identifier tokens (underscore-separated, lowercased) that mark an
#: expression as a distance/score quantity.
_FLOAT_TOKENS = {
    "distance",
    "distances",
    "dist",
    "km",
    "kms",
    "score",
    "scores",
    "cost",
    "costs",
    "fare",
    "detour",
    "gap",
    "revenue",
    "dissatisfaction",
}


def _identifier_tokens(name: str) -> set[str]:
    return {token for token in name.lower().split("_") if token}


def _is_float_signal(node: ast.expr) -> bool:
    """Whether an expression looks like a distance/score float."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return bool(_identifier_tokens(node.id) & _FLOAT_TOKENS)
    if isinstance(node, ast.Attribute):
        # Only the final attribute names the quantity: `trip.distance_km`
        # is a distance, but `distances.size` / `gap.shape` are ints.
        return bool(_identifier_tokens(node.attr) & _FLOAT_TOKENS)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return bool(_identifier_tokens(func.id) & _FLOAT_TOKENS)
        if isinstance(func, ast.Attribute):
            return bool(_identifier_tokens(func.attr) & _FLOAT_TOKENS)
        return False
    if isinstance(node, ast.Subscript):
        return _is_float_signal(node.value)
    if isinstance(node, ast.BinOp):
        return _is_float_signal(node.left) or _is_float_signal(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_float_signal(node.operand)
    return False


@register_rule
class NoFloatEqualityRule:
    rule_id = "REP006"
    summary = "exact ==/!= comparison on a distance/score expression"
    convention = (
        "Order-stable preferences (paper Thms 1-3): distances/scores are compared by "
        "threshold or rank, never exact float equality, so kernel swaps cannot flip ties."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_signal(left) or _is_float_signal(right):
                    yield ctx.finding(
                        self.rule_id,
                        "exact float equality on a distance/score expression is not "
                        "kernel-stable; compare against a threshold, use math.isclose, "
                        "or compare integer ranks",
                        node,
                    )
                    break
