"""REP001 — no wall-clock reads outside the resilience clock.

Bit-reproducible runs (the basis of every serial≡parallel and
chaos-determinism test, PR 2/3) require that simulation behaviour never
depends on the host's clock.  All timing flows through the resilience
layer's injectable clocks (:mod:`repro.resilience.budget` /
:mod:`repro.resilience.ladder`), which chaos tests replace with virtual
time.  Any other ``time.*`` / ``datetime.now``-family access is either
a determinism bug or pure telemetry — telemetry sites carry a reasoned
suppression so the next reader knows the value never feeds a decision.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import register_rule

__all__ = ["NoWallClockRule"]

#: Canonical dotted names that read or depend on the host clock.
_BANNED = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.sleep",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: The resilience clock: the only modules allowed to touch the host
#: clock directly (they are where virtual clocks get injected).
_WHITELIST = ("repro/resilience/budget.py", "repro/resilience/ladder.py")


@register_rule
class NoWallClockRule:
    rule_id = "REP001"
    summary = "wall-clock access outside the resilience clock modules"
    convention = (
        "Determinism (PR 2/3): all timing goes through the injectable clocks in "
        "repro.resilience; telemetry-only reads need a reasoned suppression."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        posix = Path(ctx.path).as_posix()
        if posix.endswith(_WHITELIST):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Attribute chains are reported at their outermost node only
            # (the full dotted path); inner Name/Attribute parts resolve
            # to prefixes like "time" that are not in the banned set.
            dotted = ctx.dotted_name(node)
            if dotted in _BANNED:
                yield ctx.finding(
                    self.rule_id,
                    f"`{dotted}` reads the host clock; use the resilience layer's "
                    "injectable clock (repro.resilience.budget/ladder) so runs stay "
                    "bit-reproducible",
                    node,
                )
