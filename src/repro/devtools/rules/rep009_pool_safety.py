"""REP009 — process-pool callables must be module-level and capture-free.

The sharded solve path (PR 7) and the experiment runner fan frames out
through :class:`concurrent.futures.ProcessPoolExecutor`.  Everything
submitted crosses a pickle boundary, which makes two whole bug classes
possible that never compile on the single-process path:

* **unpicklable callables** — lambdas, functions defined inside another
  function, and bound methods either fail to pickle outright or (worse,
  with fork) *appear* to work locally and break on spawn platforms;
* **captured state** — a closure or bound method that drags an engine,
  distance oracle, frame cache, or ``random.Random`` into the child
  duplicates state the parent keeps mutating: the RNG forks its stream
  (breaking bit-reproducibility) and the cache/oracle silently stops
  seeing parent updates.

The rule finds every ``.submit(...)`` / ``.map(...)`` on a
ProcessPoolExecutor — whether the pool is a local variable, a ``with``
target, an instance attribute, or the result of a helper annotated
``-> ProcessPoolExecutor`` (the dispatcher's ``_ensure_shard_pool``
shape) — and requires the submitted callable to resolve to a
module-level function (local or imported).  ``functools.partial`` is
unwrapped and its bound arguments are scanned for captured engines /
oracles / caches / RNGs by constructor and naming convention.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.project import FunctionInfo, ProjectContext, module_name_for_path
from repro.devtools.registry import register_rule

__all__ = ["PoolSafetyRule"]

_POOL_CLASS = "concurrent.futures.ProcessPoolExecutor"
_POOL_METHODS = {"submit", "map"}

#: Canonical constructors whose instances must never ride into a worker.
_STATEFUL_CTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
}

#: Name fragments that mark a value as parent-process state by repo
#: convention (engines, oracles, caches carry live mutable state).
_STATEFUL_NAME_HINTS = (
    "engine", "oracle", "cache", "dispatcher", "simulator",
    "rng", "random", "pool", "executor", "injector", "auditor",
)


def _is_pool_ctor(call: ast.Call, ctx: FileContext) -> bool:
    return ctx.dotted_name(call.func) == _POOL_CLASS


def _annotation_mentions_pool(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return "ProcessPoolExecutor" in annotation.value
    return any(
        isinstance(node, ast.Name) and node.id == "ProcessPoolExecutor"
        for node in ast.walk(annotation)
    )


def _looks_stateful(name: str) -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in _STATEFUL_NAME_HINTS)


class _FunctionScope:
    """Name bindings inside one function, for capture/pool resolution."""

    def __init__(self, fn: FunctionInfo, ctx: FileContext):
        self.fn = fn
        self.ctx = ctx
        self.pool_names: set[str] = set()
        self.assigned_from: dict[str, ast.expr] = {}
        self.nested_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.local_names: set[str] = set(fn.params)
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if _annotation_mentions_pool(arg.annotation):
                self.pool_names.add(arg.arg)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.expr):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.local_names.add(target.id)
                        self.assigned_from[target.id] = node.value
                        if isinstance(node.value, ast.Call) and _is_pool_ctor(
                            node.value, ctx
                        ):
                            self.pool_names.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    target = item.optional_vars
                    if (
                        isinstance(target, ast.Name)
                        and isinstance(item.context_expr, ast.Call)
                        and _is_pool_ctor(item.context_expr, ctx)
                    ):
                        self.pool_names.add(target.id)
                        self.local_names.add(target.id)
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not fn.node
            ):
                self.nested_defs[node.name] = node
                self.local_names.add(node.name)


@register_rule
class PoolSafetyRule:
    rule_id = "REP009"
    summary = "process-pool callable is not a capture-free module-level function"
    convention = (
        "Sharded fan-out (PR 7): everything crossing the ProcessPoolExecutor pickle "
        "boundary must be a module-level function with explicit picklable arguments."
    )

    def project_check(self, project: ProjectContext) -> Iterator[Finding]:
        pool_attrs = self._pool_attributes(project)
        pool_returning = self._pool_returning_callables(project)
        for fn in project.iter_functions():
            ctx = project.context_for(fn.path)
            scope = _FunctionScope(fn, ctx)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute) or func.attr not in _POOL_METHODS:
                    continue
                if not self._receiver_is_pool(
                    func.value, scope, pool_attrs, pool_returning
                ):
                    continue
                if not node.args:
                    continue
                yield from self._check_callable(node.args[0], node, fn, scope, project)

    # -- pool-object discovery --------------------------------------------

    @staticmethod
    def _pool_attributes(project: ProjectContext) -> dict[str, set[str]]:
        """Class name -> attribute names holding a ProcessPoolExecutor."""
        attrs: dict[str, set[str]] = {}
        for cinfo in project.iter_classes():
            ctx = project.context_for(cinfo.path)
            names: set[str] = set()
            for node in ast.walk(cinfo.node):
                if isinstance(node, ast.Assign):
                    if isinstance(node.value, ast.Call) and _is_pool_ctor(node.value, ctx):
                        for target in node.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                names.add(target.attr)
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _annotation_mentions_pool(node.annotation)
                    ):
                        names.add(target.attr)
            for name, stmt in cinfo.class_attrs.items():
                if isinstance(stmt, ast.AnnAssign) and _annotation_mentions_pool(
                    stmt.annotation
                ):
                    names.add(name)
            if names:
                attrs[cinfo.name] = names
        return attrs

    @staticmethod
    def _pool_returning_callables(project: ProjectContext) -> set[str]:
        """Names of functions/methods annotated to return a pool."""
        return {
            fn.name
            for fn in project.iter_functions()
            if _annotation_mentions_pool(fn.node.returns)
        }

    def _receiver_is_pool(
        self,
        receiver: ast.expr,
        scope: _FunctionScope,
        pool_attrs: dict[str, set[str]],
        pool_returning: set[str],
    ) -> bool:
        if isinstance(receiver, ast.Name):
            return receiver.id in scope.pool_names
        if isinstance(receiver, ast.Call):
            if _is_pool_ctor(receiver, scope.ctx):
                return True
            func = receiver.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            return name in pool_returning
        if isinstance(receiver, ast.Attribute) and isinstance(receiver.value, ast.Name):
            if receiver.value.id == "self":
                owner = scope.fn.class_name
                if owner is not None and receiver.attr in pool_attrs.get(owner, ()):
                    return True
            return any(receiver.attr in names for names in pool_attrs.values())
        return False

    # -- submitted-callable vetting ---------------------------------------

    def _check_callable(
        self,
        target: ast.expr,
        call: ast.Call,
        fn: FunctionInfo,
        scope: _FunctionScope,
        project: ProjectContext,
    ) -> Iterator[Finding]:
        ctx = scope.ctx
        if isinstance(target, ast.Lambda):
            yield ctx.finding(
                self.rule_id,
                "lambda submitted to a process pool cannot be pickled; "
                "hoist it to a module-level function",
                target,
            )
            return
        if isinstance(target, ast.Call) and ctx.dotted_name(target.func) in (
            "functools.partial",
            "partial",
        ):
            if target.args:
                yield from self._check_callable(target.args[0], call, fn, scope, project)
                for bound in list(target.args[1:]) + [kw.value for kw in target.keywords]:
                    yield from self._check_bound_argument(bound, scope)
            return
        if isinstance(target, ast.Attribute):
            yield ctx.finding(
                self.rule_id,
                f"`{ctx.snippet(target) or 'bound attribute'}`: submitting a bound "
                "method ships its whole instance (engine/cache state) to the "
                "worker; submit a module-level function taking explicit arguments",
                target,
            )
            return
        if not isinstance(target, ast.Name):
            return
        name = target.id
        nested = scope.nested_defs.get(name)
        if nested is not None:
            captured = self._risky_captures(nested, scope)
            detail = (
                f" and closes over {', '.join(f'`{c}`' for c in captured)}"
                if captured
                else ""
            )
            yield ctx.finding(
                self.rule_id,
                f"`{name}` is defined inside `{fn.name}`{detail}; process-pool "
                "callables must be module-level functions with explicit arguments",
                nested,
            )
            return
        if name in ctx.aliases:
            return  # imported at module level: picklable by reference
        module = module_name_for_path(ctx.path)
        if name in project.module_functions.get(module, {}):
            return  # module-level def in the same file
        if name in project.module_classes.get(module, {}):
            return  # module-level class: picklable by reference
        if name in scope.local_names:
            source = scope.assigned_from.get(name)
            came_from = f" (assigned from `{ctx.snippet(source)}`)" if source is not None else ""
            yield ctx.finding(
                self.rule_id,
                f"`{name}` is a local binding{came_from}; the pool boundary "
                "needs a module-level function it can pickle by reference",
                target,
            )

    def _check_bound_argument(
        self, bound: ast.expr, scope: _FunctionScope
    ) -> Iterator[Finding]:
        """Flag partial-bound arguments that carry parent-process state."""
        ctx = scope.ctx
        if isinstance(bound, ast.Call) and ctx.dotted_name(bound.func) in _STATEFUL_CTORS:
            yield ctx.finding(
                self.rule_id,
                f"`{ctx.dotted_name(bound.func)}` instance bound into a pool "
                "submission forks live state into the worker; pass plain data "
                "(a seed, a payload) instead",
                bound,
            )
            return
        name: str | None = None
        if isinstance(bound, ast.Name):
            name = bound.id
        elif isinstance(bound, ast.Attribute):
            name = bound.attr
        if name is None:
            return
        origin = scope.assigned_from.get(name)
        if origin is not None and isinstance(origin, ast.Call):
            if ctx.dotted_name(origin.func) in _STATEFUL_CTORS:
                yield ctx.finding(
                    self.rule_id,
                    f"`{name}` holds a `{ctx.dotted_name(origin.func)}`; binding "
                    "it into a pool submission forks live state into the worker",
                    bound,
                )
                return
        if isinstance(bound, ast.Attribute) and _looks_stateful(name):
            yield ctx.finding(
                self.rule_id,
                f"`{ctx.snippet(bound) or name}` looks like live parent-process "
                "state bound into a pool submission; pass plain data instead",
                bound,
            )

    @staticmethod
    def _risky_captures(
        nested: ast.FunctionDef | ast.AsyncFunctionDef, scope: _FunctionScope
    ) -> list[str]:
        """Free variables of ``nested`` that carry parent-process state."""
        own: set[str] = {a.arg for a in nested.args.args + nested.args.kwonlyargs}
        for node in ast.walk(nested):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        own.add(target.id)
        risky: list[str] = []
        for node in ast.walk(nested):
            if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                continue
            name = node.id
            if name in own or name in risky:
                continue
            if name not in scope.local_names:
                continue  # global or builtin, not a capture
            origin = scope.assigned_from.get(name)
            from_stateful_ctor = (
                origin is not None
                and isinstance(origin, ast.Call)
                and scope.ctx.dotted_name(origin.func) in _STATEFUL_CTORS
            )
            if from_stateful_ctor or _looks_stateful(name):
                risky.append(name)
        return sorted(risky)
