"""The event-driven streaming dispatch engine.

Where the batch :class:`~repro.simulation.engine.Simulator` advances a
fixed per-minute frame loop, :class:`StreamingEngine` advances a
discrete-event queue (:mod:`repro.streaming.events`): request arrivals
stream in at their trace times, taxi releases fire at the exact second
an assignment completes, and matching epochs self-schedule every
``epoch_length_s``.  Matching itself is zone-sharded with persistent
per-zone warm state (:mod:`repro.streaming.matcher`), with boundary
taxis reconciled by merging reachable zones into solve groups
(:mod:`repro.streaming.zones`) and an optional per-epoch
:class:`~repro.resilience.budget.FrameBudget` sliced per zone group.

**Equivalence mode.**  With ``epoch_length_s == frame_length_s`` (the
default) the engine is *bit-identical* to the batch engine running the
cold ``NSTDDispatcher`` on the same trace: epochs fire at the batch
frame times by the same float accumulation, the event priorities
reproduce the batch engine's inclusive admission/idleness scans,
patience expiry runs the same prefix scan at epoch boundaries, the
zone-group union equals the global stable matching (component-
decomposition theorem + warm ≡ cold), assignments execute in the same
ascending-request-id order with the same exact float arithmetic, and
the run terminates on the same condition.  The city-day benchmark
asserts this equality on summary, outcomes and assignments before
timing the streaming row.

A *shorter* epoch than the frame length is the streaming engine's
reason to exist: the dispatcher reacts to demand at epoch granularity
instead of holding arrivals for a full minute.  Results then
legitimately differ from the batch engine (they correspond to a batch
run at the finer frame length, modulo patience expiry at epoch
boundaries).

Repositioning policies, the degradation ladder, durability and the
stability auditor remain batch-engine features; the streaming engine's
resilience story is the per-zone budget (one hot zone degrades alone).

Returns the same :class:`~repro.simulation.engine.SimulationResult` as
the batch engine — every summary, analysis and ``perf_stats()``
consumer works unchanged — with the streaming counters
(``events_processed``, per-zone queue depths, boundary
reconciliations, zone group accounting) merged into
``dispatch_telemetry``.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.errors import SimulationError
from repro.core.types import PassengerRequest, Taxi
from repro.geometry.batch import as_point_array
from repro.geometry.distance import DistanceOracle
from repro.resilience.budget import FrameBudget
from repro.simulation.engine import SimulationResult
from repro.simulation.events import AssignmentRecord, FrameStats, RequestOutcome, TaxiStats
from repro.simulation.frame_cache import FrameDistanceCache
from repro.simulation.taxi_state import TaxiAgent
from repro.streaming.events import (
    PRIORITY_MATCHING_EPOCH,
    PRIORITY_REQUEST_ARRIVAL,
    PRIORITY_TAXI_RELEASE,
    EventQueue,
    MatchingEpoch,
    RequestArrival,
    TaxiRelease,
)
from repro.streaming.matcher import ZoneMatcher
from repro.streaming.zones import zone_queue_depths

__all__ = ["StreamingEngine"]


class StreamingEngine:
    """Run the zone-sharded streaming dispatcher over one trace.

    ``epoch_length_s`` defaults to the simulation config's frame
    length — the proven batch-equivalence mode.  ``zone_km`` fixes the
    persistent zone grid edge (``None`` derives it from the first
    epoch's median acceptability radius and freezes it for the run);
    ``zone_replan_every`` bounds how long a single-component city may
    coast on the coarse city-wide plan between full component sweeps.
    ``warm_zones`` carries per-zone solver state across epochs;
    ``epoch_budget_s`` installs a per-epoch frame budget sliced per
    zone group (``budget_clock`` injects a virtual clock for tests,
    like :class:`~repro.resilience.budget.FrameBudget` itself).
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        sim_config: SimulationConfig | None = None,
        *,
        optimize_for: str = "passenger",
        alpha_by_taxi: Mapping[int, float] | None = None,
        epoch_length_s: float | None = None,
        zone_km: float | None = None,
        zone_replan_every: int = 8,
        warm_zones: bool = True,
        epoch_budget_s: float | None = None,
        budget_clock: Callable[[], float] | None = None,
        overrun_s: float = 6.0 * 3600.0,
    ):
        self.oracle = oracle
        self.sim_config = sim_config if sim_config is not None else SimulationConfig()
        if epoch_length_s is not None and epoch_length_s <= 0.0:
            raise ValueError(f"epoch_length_s must be positive, got {epoch_length_s}")
        if epoch_budget_s is not None and epoch_budget_s < 0.0:
            raise ValueError(f"epoch_budget_s must be non-negative, got {epoch_budget_s}")
        if optimize_for not in ("passenger", "taxi"):
            raise ValueError(
                f"optimize_for must be 'passenger' or 'taxi', got {optimize_for!r}"
            )
        self.optimize_for = optimize_for
        self.alpha_by_taxi = dict(alpha_by_taxi) if alpha_by_taxi else None
        self.epoch_length_s = (
            float(epoch_length_s)
            if epoch_length_s is not None
            else float(self.sim_config.frame_length_s)
        )
        self.zone_km = zone_km
        self.zone_replan_every = zone_replan_every
        self.warm_zones = warm_zones
        self.epoch_budget_s = epoch_budget_s
        self.budget_clock = budget_clock
        self.overrun_s = overrun_s
        self.name = f"{'NSTD-T' if optimize_for == 'taxi' else 'NSTD-P'}-streaming"

    def _make_epoch_budget(self) -> FrameBudget | None:
        """A fresh per-epoch budget anchored now, or ``None`` when unset."""
        if self.epoch_budget_s is None:
            return None
        if self.budget_clock is not None:
            return FrameBudget(self.epoch_budget_s, clock=self.budget_clock)
        return FrameBudget(self.epoch_budget_s)

    def run(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> SimulationResult:
        """Simulate until every request resolves or the horizon+overrun ends.

        Same contract as :meth:`repro.simulation.engine.Simulator.run`
        minus the batch-only collaborators; the returned
        :class:`~repro.simulation.engine.SimulationResult` carries the
        streaming counters in ``dispatch_telemetry``.
        """
        config = self.sim_config
        agents = {t.taxi_id: TaxiAgent.from_taxi(t) for t in taxis}
        if len(agents) != len(taxis):
            raise SimulationError("duplicate taxi ids in fleet")
        agent_list = list(agents.values())
        agent_row = {agent.taxi_id: row for row, agent in enumerate(agent_list)}
        snapshots = [agent.snapshot() for agent in agent_list]
        # Idleness is event-maintained: assignments clear a taxi's flag,
        # its TaxiRelease event sets it back.  The per-epoch idle gather
        # is one flatnonzero over the flags, in fleet-row order — the
        # same ascending-row order the batch engine's availability scan
        # produces.
        is_idle = np.ones(len(agent_list), dtype=bool)

        ordered = sorted(requests, key=lambda r: (r.request_time_s, r.request_id))
        outcomes = [
            RequestOutcome(request_id=r.request_id, request_time_s=r.request_time_s)
            for r in ordered
        ]
        outcomes_by_id = {outcome.request_id: outcome for outcome in outcomes}
        if len(outcomes_by_id) != len(ordered):
            raise SimulationError("duplicate request ids in trace")

        arrival_cursor = 0
        # Insertion-ordered by admission (arrival events pop in trace
        # order), so request times are non-decreasing along the queue —
        # the prefix-scan patience invariant, inherited from the batch
        # engine.
        queue: dict[int, PassengerRequest] = {}
        assignments: list[AssignmentRecord] = []
        frame_stats: list[FrameStats] = []

        cache = FrameDistanceCache(self.oracle)
        matcher = ZoneMatcher(
            self.oracle,
            config.dispatch,
            optimize_for=self.optimize_for,
            alpha_by_taxi=self.alpha_by_taxi,
            warm_start=self.warm_zones,
            zone_km=self.zone_km,
            replan_every=self.zone_replan_every,
        )
        matcher.reset(counters=True)

        epoch = self.epoch_length_s
        deadline = config.horizon_s + self.overrun_s
        frames_run = 0
        arrivals_processed = 0
        releases_processed = 0
        boundary_reconciliations = 0
        zones_active_max = 0
        zones_pending_max = 0
        zone_queue_depth_max = 0
        final_time_s = deadline
        dcfg = matcher.config
        oracle = self.oracle

        events = EventQueue()
        if ordered:
            first = ordered[0]
            events.push(first.request_time_s, PRIORITY_REQUEST_ARRIVAL, RequestArrival(first))
        events.push(epoch, PRIORITY_MATCHING_EPOCH, MatchingEpoch())

        while events:
            time_s, event = events.pop()
            if isinstance(event, TaxiRelease):
                is_idle[event.taxi_row] = True
                releases_processed += 1
                continue
            if isinstance(event, RequestArrival):
                incoming = event.request
                queue[incoming.request_id] = incoming
                arrival_cursor += 1
                arrivals_processed += 1
                if arrival_cursor < len(ordered):
                    nxt = ordered[arrival_cursor]
                    events.push(
                        nxt.request_time_s, PRIORITY_REQUEST_ARRIVAL, RequestArrival(nxt)
                    )
                continue

            # -- matching epoch at time_s ---------------------------------
            abandoned_now = 0
            if config.passenger_patience_s != float("inf"):
                # Expired entries form a prefix of the admission-ordered
                # queue; stop at the first survivor (batch semantics).
                expired = []
                for rid, queued in queue.items():
                    if time_s - queued.request_time_s <= config.passenger_patience_s:
                        break
                    expired.append(rid)
                for rid in expired:
                    del queue[rid]
                    outcomes_by_id[rid].abandoned = True
                abandoned_now = len(expired)
                cache.retire_requests(expired)

            queue_length_before = len(queue)
            dispatched_now = 0
            assignments_before = len(assignments)
            idle = [snapshots[row] for row in np.flatnonzero(is_idle).tolist()]
            dispatch_ms = 0.0
            cache.begin_frame()  # taxi positions changed: drop stale matrices
            if queue and idle:
                batch = list(queue.values())
                # repro-lint: disable=REP001 telemetry only: dispatch_ms never feeds a decision
                dispatch_start = time.perf_counter()
                trip = cache.trip_km(batch)
                report = matcher.match_epoch(
                    idle,
                    batch,
                    trip_km=trip,
                    budget=self._make_epoch_budget(),
                    on_new_trips=cache.prime_trip_km,
                )
                # repro-lint: disable=REP001 telemetry only: dispatch_ms never feeds a decision
                dispatch_ms = (time.perf_counter() - dispatch_start) * 1e3
                plan = report.plan
                if plan is not None:
                    boundary_reconciliations += plan.boundary_merges
                    zones_active_max = max(zones_active_max, plan.zones_occupied)
                zone_eff = matcher.zone_km_effective
                if zone_eff:
                    try:
                        depths = zone_queue_depths(
                            as_point_array(
                                [r.pickup for r in batch], check_finite=False
                            ),
                            zone_eff,
                        )
                    except ValueError:
                        depths = None  # unbucketable coordinates: no depth sample
                    if depths is not None and depths.size:
                        zone_queue_depth_max = max(zone_queue_depth_max, int(depths.max()))
                        zones_pending_max = max(zones_pending_max, int(depths.size))
                retired: list[int] = []
                # Ascending request id — the order the batch NSTD path
                # emits (sorted matching pairs) and the engine executes.
                for rid, taxi_id in sorted(report.pairs.items()):
                    request = queue[rid]
                    agent = agents[taxi_id]
                    # The batch engine's canonical non-sharing execution,
                    # operation for operation: both legs from the exact
                    # oracle/memo, the ``0.0 +`` seed, the cumulative
                    # subtraction — every recorded float bit-identical.
                    d1 = oracle.distance(agent.location, request.pickup)
                    d2 = cache.trip_distance(request)
                    pickup_km = 0.0 + d1
                    total_drive = pickup_km + d2
                    detour = (total_drive - pickup_km) - d2
                    taxi_dis = total_drive - (dcfg.alpha + 1.0) * d2
                    pickup_s, dropoff_s = agent.assign_single(
                        request, time_s, d1, d2, config
                    )
                    outcome = outcomes_by_id[rid]
                    outcome.pickup_time_s = pickup_s
                    outcome.dropoff_time_s = dropoff_s
                    outcome.dispatch_time_s = time_s
                    outcome.taxi_id = taxi_id
                    outcome.group_size = 1
                    outcome.passenger_dissatisfaction = pickup_km + dcfg.beta * detour
                    del queue[rid]
                    retired.append(rid)
                    row = agent_row[taxi_id]
                    is_idle[row] = False
                    snapshots[row] = agent.snapshot()
                    events.push(
                        agent.available_at_s, PRIORITY_TAXI_RELEASE, TaxiRelease(row)
                    )
                    assignments.append(
                        AssignmentRecord(
                            frame_time_s=time_s,
                            taxi_id=taxi_id,
                            request_ids=(rid,),
                            taxi_dissatisfaction=taxi_dis,
                            total_drive_km=total_drive,
                            revenue_km=d2,
                        )
                    )
                    dispatched_now += 1
                cache.retire_requests(retired)

            frame_stats.append(
                FrameStats(
                    time_s=time_s,
                    queue_length=queue_length_before,
                    idle_taxis=len(idle),
                    dispatched_requests=dispatched_now,
                    dispatched_taxis=len(assignments) - assignments_before,
                    abandoned=abandoned_now,
                    dispatch_ms=dispatch_ms,
                )
            )
            frames_run += 1
            # Past the horizon no new requests arrive; stop as soon as
            # the queue drains (the batch engine's exit condition).
            if time_s >= config.horizon_s and not queue and arrival_cursor >= len(ordered):
                final_time_s = time_s
                break
            next_epoch_s = time_s + epoch
            if next_epoch_s <= deadline:
                events.push(next_epoch_s, PRIORITY_MATCHING_EPOCH, MatchingEpoch())
            else:
                final_time_s = deadline
                break

        revenue_by_taxi: dict[int, float] = {t: 0.0 for t in agents}
        for record in assignments:
            revenue_by_taxi[record.taxi_id] += record.revenue_km
        taxi_stats = {
            taxi_id: TaxiStats(
                taxi_id=taxi_id,
                driven_km=agent.total_driven_km,
                rides=agent.completed_trips,
                requests_served=agent.served_requests,
                revenue_km=revenue_by_taxi[taxi_id],
            )
            for taxi_id, agent in agents.items()
        }

        telemetry: dict[str, float | int] = dict(matcher.run_telemetry())
        telemetry.update(cache.stats())
        telemetry.update(
            {
                "events_processed": events.popped,
                "events_arrivals": arrivals_processed,
                "events_releases": releases_processed,
                "events_epochs": frames_run,
                "epochs_run": frames_run,
                "epoch_length_s": epoch,
                "boundary_reconciliations": boundary_reconciliations,
                "zones_active_max": zones_active_max,
                "zones_pending_max": zones_pending_max,
                "zone_queue_depth_max": zone_queue_depth_max,
            }
        )
        zone_eff = matcher.zone_km_effective
        if zone_eff is not None:
            telemetry["zone_km"] = zone_eff

        return SimulationResult(
            dispatcher_name=self.name,
            outcomes=outcomes,
            assignments=assignments,
            frames_run=frames_run,
            final_time_s=min(final_time_s, deadline),
            taxi_stats=taxi_stats,
            frame_stats=frame_stats,
            frame_length_s=epoch,
            resilience=None,
            dispatch_telemetry=telemetry,
            stability_audit=None,
        )
