"""The streaming core's discrete-event queue and its event vocabulary.

The batch engine materializes one frame per minute whether or not
anything happened in it; the streaming engine instead advances a
**monotonic virtual clock** over three event kinds:

* :class:`RequestArrival` — a passenger enters the pending queue.  The
  trace is pre-sorted by ``(request_time_s, request_id)`` and arrivals
  are fed lazily (each popped arrival schedules the next), so the heap
  holds at most one unarrived request at a time and equal-time arrivals
  pop in the batch engine's admission order.
* :class:`TaxiRelease` — a dispatched taxi finishes its last dropoff
  and returns to the idle pool.  Scheduled by the engine at the exact
  ``available_at_s`` its assignment produced.
* :class:`MatchingEpoch` — the dispatcher runs over the currently idle
  taxis and pending requests.  Epochs self-schedule: processing the
  epoch at ``T`` enqueues the next at ``T + epoch_length_s`` by the
  same float accumulation the batch loop uses, so at
  ``epoch_length_s == frame_length_s`` the epoch times are *bit-equal*
  to the batch frame times.

**Ordering contract.**  Events pop in ``(time_s, priority, seq)``
order with priorities ``release < arrival < epoch``: everything that
happens *at* time ``T`` is visible to the matching epoch at ``T``,
mirroring the batch engine's inclusive scans (``request_time_s <=
time_s`` admission, ``available_at <= time_s`` idleness).  ``seq`` is
the push ticket, so equal-(time, priority) events pop in push order —
deterministic by construction, never by object identity.

The queue enforces clock monotonicity: pushing an event earlier than
the last popped time raises :class:`~repro.core.errors.SimulationError`
(such an event could never be processed causally).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.core.errors import SimulationError
from repro.core.types import PassengerRequest

__all__ = [
    "PRIORITY_TAXI_RELEASE",
    "PRIORITY_REQUEST_ARRIVAL",
    "PRIORITY_MATCHING_EPOCH",
    "RequestArrival",
    "TaxiRelease",
    "MatchingEpoch",
    "Event",
    "EventQueue",
]


#: Same-timestamp processing order (lower pops first).  Releases and
#: arrivals at time ``T`` precede the epoch at ``T`` so the epoch sees
#: them — the batch engine's inclusive ``<= time_s`` scans, as events.
PRIORITY_TAXI_RELEASE = 0
PRIORITY_REQUEST_ARRIVAL = 1
PRIORITY_MATCHING_EPOCH = 2


@dataclass(frozen=True, slots=True)
class RequestArrival:
    """A passenger request entering the pending queue at its trace time."""

    request: PassengerRequest


@dataclass(frozen=True, slots=True)
class TaxiRelease:
    """A taxi returning to the idle pool (row into the engine's fleet)."""

    taxi_row: int


@dataclass(frozen=True, slots=True)
class MatchingEpoch:
    """A dispatch round over the idle fleet and pending queue."""


Event = RequestArrival | TaxiRelease | MatchingEpoch


class EventQueue:
    """A deterministic min-heap of timestamped events.

    Entries are ``(time_s, priority, seq, event)`` tuples; ``seq`` is a
    monotone push counter, so comparison never reaches the event object
    and equal-keyed events pop in push order.  ``popped`` / ``pushed``
    and the per-kind counters feed the run's streaming telemetry.
    """

    __slots__ = ("_heap", "_seq", "_last_popped_s", "pushed", "popped")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._last_popped_s = float("-inf")
        self.pushed = 0
        self.popped = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def clock_s(self) -> float:
        """The virtual clock: timestamp of the last popped event."""
        return self._last_popped_s

    def push(self, time_s: float, priority: int, event: Event) -> None:
        """Schedule ``event`` at ``time_s`` (within its priority class).

        Raises :class:`~repro.core.errors.SimulationError` if ``time_s``
        precedes the virtual clock — a causality violation no discrete-
        event schedule may contain — or is not a finite number.
        """
        if not math.isfinite(time_s):
            raise SimulationError(f"event time must be finite, got {time_s}")
        if time_s < self._last_popped_s:
            raise SimulationError(
                f"event at t={time_s} scheduled before the virtual clock "
                f"t={self._last_popped_s}"
            )
        heapq.heappush(self._heap, (time_s, priority, self._seq, event))
        self._seq += 1
        self.pushed += 1

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or ``None`` on an empty queue."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> tuple[float, Event]:
        """Remove and return the next ``(time_s, event)``, advancing the
        virtual clock.  Raises on an empty queue."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        time_s, _, _, event = heapq.heappop(self._heap)
        self._last_popped_s = time_s
        self.popped += 1
        return time_s, event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventQueue(len={len(self._heap)}, clock_s={self._last_popped_s}, "
            f"pushed={self.pushed})"
        )
