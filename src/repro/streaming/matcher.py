"""Per-zone persistent NSTD matcher state for the streaming engine.

Each zone group (:mod:`repro.streaming.zones`) is one independent
stable-matching problem, solved with the standard cold builders
(:func:`~repro.matching.sharding.solve_shard`) or — when any of the
group's zone keys recurs — resumed warm through the frame solver
(:func:`~repro.matching.warm_frame.warm_frame_solve`) on the group's
carried :class:`~repro.matching.warm_frame.FrameSolveState`.  A
group's state is filed under *every* zone key it spans, so zone churn
(a drained zone, a merged neighbour) moves the lookup, not the state.

**Why zone-keyed warm reuse is sound.**  A carried state may be
resumed against *any* later entity set, not just the exact group that
seeded it, because the warm solver's two preconditions hold for every
such pairing:

1. *Retention only by identity.*  An entity is classified retained
   only if the same live object recurs (CPython address held by the
   state).  Entities that migrated in from another zone, or were never
   presented, are simply classified new — the direction the solver
   proves always sound.
2. *Retained × retained is unacceptable.*  Retained entities were
   unmatched in the seeding group's stable matching and have not moved
   (idle taxis memoize their snapshot on the location object; queued
   requests are frozen), and any two entities unmatched by one stable
   solve are mutually unacceptable — they would have formed a blocking
   pair.  So the retained block of *this* epoch's group contains no
   acceptable pair, exactly the warm solver's edge-turnover theorem.

Together with the warm ≡ cold equivalence of the frame solver and the
component-decomposition theorem, every epoch's union of group
matchings is bit-identical to the global cold solve — warm hits, cold
misses, and anchor drift alike.

**Per-zone degradation.**  Under an epoch :class:`~repro.resilience.
budget.FrameBudget`, the groups (smallest first) share one budget
anchored at the epoch start, each extended to its own cumulative slice
(:func:`~repro.resilience.budget.zone_budget_slices`, work-weighted).
A group whose slice has already elapsed at its start degrades to the
greedy ladder rung for *its entities only*; later groups still get
their own (later) deadlines, so one hot zone cannot drag the city
down.  Degraded groups never seed warm state (their matching is not
stable) and their stale carried state is dropped.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DispatchConfig
from repro.core.errors import FrameBudgetExceededError, WarmStartError
from repro.core.types import PassengerRequest, Taxi
from repro.dispatch.nonsharing.greedy import GreedyNearestDispatcher
from repro.geometry.batch import as_point_array
from repro.geometry.distance import DistanceOracle
from repro.matching.sharding import (
    _check_global_ids,
    acceptability_radii,
    default_cell_km,
    solve_shard,
)
from repro.matching.warm_frame import (
    FrameSolveState,
    frame_state_from_cold,
    warm_frame_solve,
)
from repro.resilience.budget import FrameBudget, zone_budget_slices
from repro.streaming.zones import (
    EpochZonePlan,
    ZoneGroup,
    coarse_epoch_plan,
    plan_epoch_zones,
)

__all__ = ["EpochMatchReport", "ZoneMatcher"]


@dataclass(slots=True)
class EpochMatchReport:
    """What one epoch's zone-sharded solve produced.

    ``pairs`` maps request id → taxi id across all groups; executing
    them in ascending request-id order reproduces the batch engine's
    assignment order.  The group counters distinguish warm resumes,
    cold solves and budget degradations; ``zones_degraded`` counts the
    *zones* inside degraded groups, the per-zone degradation metric the
    streaming telemetry reports.
    """

    pairs: dict[int, int] = field(default_factory=dict)
    plan: EpochZonePlan | None = None
    groups_solved: int = 0
    warm_groups: int = 0
    cold_groups: int = 0
    degraded_groups: int = 0
    zones_degraded: int = 0


class ZoneMatcher:
    """Persistent per-zone NSTD matcher, warm across matching epochs.

    One instance lives for one streaming run; it owns a dict of
    zone-keyed :class:`~repro.matching.warm_frame.FrameSolveState`
    (one shared entry per zone a group spans) and replaces it wholesale
    every epoch (groups that vanished this epoch drop their state —
    zone churn must not pin dead objects).

    ``optimize_for`` selects the NSTD orientation (``"passenger"`` or
    ``"taxi"``); ``zone_km`` fixes the zone grid edge, or ``None`` to
    derive it from the first epoch's median acceptability radius and
    freeze it for the run (zones must not move between epochs, or the
    zone keys would not be persistent identities).  ``replan_every``
    bounds how many epochs a single-component city may reuse the cheap
    coarse city-wide plan before the full θ-ball component sweep runs
    again (fragmenting cities replan every epoch; see
    :func:`~repro.streaming.zones.coarse_epoch_plan`).
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        config: DispatchConfig | None = None,
        *,
        optimize_for: str = "passenger",
        alpha_by_taxi: Mapping[int, float] | None = None,
        warm_start: bool = True,
        zone_km: float | None = None,
        replan_every: int = 8,
    ):
        if optimize_for not in ("passenger", "taxi"):
            raise ValueError(
                f"optimize_for must be 'passenger' or 'taxi', got {optimize_for!r}"
            )
        if zone_km is not None and zone_km <= 0.0:
            raise ValueError(f"zone_km must be positive, got {zone_km}")
        if replan_every < 1:
            raise ValueError(f"replan_every must be >= 1, got {replan_every}")
        self.oracle = oracle
        self.config = config if config is not None else DispatchConfig()
        self.optimize_for = optimize_for
        self.alpha_by_taxi = dict(alpha_by_taxi) if alpha_by_taxi else None
        self.warm_start = warm_start
        self.zone_km = zone_km
        self.replan_every = replan_every
        self._zone_km_effective: float | None = zone_km
        self._states: dict[int, FrameSolveState] = {}
        self._telemetry: dict[str, float | int] = {}
        self._epoch_index = 0
        self._last_full_groups: int | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def zone_km_effective(self) -> float | None:
        """The frozen zone edge, once the first epoch derived/adopted it."""
        return self._zone_km_effective

    def reset(self, *, counters: bool = False) -> None:
        """Drop all carried zone states (and optionally the counters).

        The engine calls this at run start; a matcher reused across
        runs would otherwise resume states describing another world.
        A derived ``zone_km`` is dropped too and re-derived next run.
        """
        self._states = {}
        self._zone_km_effective = self.zone_km
        self._epoch_index = 0
        self._last_full_groups = None
        if counters:
            self._telemetry = {}

    def run_telemetry(self) -> dict[str, float | int]:
        """Counters since the last full reset, for ``perf_stats()``.

        Uses the canonical warm-start key names (``warm_frames`` /
        ``cold_frames`` / ``pairs_scored_warm`` / ``full_pairs_warm``)
        counted per *group solve*, so the derived ``warm_hit_rate`` and
        ``warm_rebuild_fraction`` of
        :meth:`~repro.simulation.engine.SimulationResult.perf_stats`
        read as group-level rates on streaming runs.
        """
        return dict(self._telemetry)

    def _bump(self, key: str, amount: float | int = 1) -> None:
        self._telemetry[key] = self._telemetry.get(key, 0) + amount

    # -- the epoch solve ---------------------------------------------------

    def _resolve_zone_km(self, trip_km: np.ndarray, alpha_max: float) -> float:
        """The run's zone edge, deriving and freezing it on first use."""
        if self._zone_km_effective is None:
            radii = acceptability_radii(trip_km, self.config, alpha_max=alpha_max)
            self._zone_km_effective = default_cell_km(radii)
        return self._zone_km_effective

    def _solve_group_cold(
        self,
        group_taxis: list[Taxi],
        group_requests: list[PassengerRequest],
        group_trip: np.ndarray,
    ) -> tuple[dict[int, int], FrameSolveState | None]:
        """One group through the standard cold builders (+ state seed)."""
        matched = solve_shard(
            group_taxis,
            group_requests,
            self.oracle,
            self.config,
            optimize_for=self.optimize_for,
            alpha_by_taxi=self.alpha_by_taxi,
            trip_km=group_trip,
        )
        state = (
            frame_state_from_cold(group_taxis, group_requests, matched, trip=group_trip)
            if self.warm_start
            else None
        )
        return dict(matched.pairs), state

    def match_epoch(
        self,
        taxis: Sequence[Taxi],
        requests: Sequence[PassengerRequest],
        *,
        trip_km: np.ndarray,
        budget: FrameBudget | None = None,
        on_new_trips: Callable[[np.ndarray, np.ndarray], None] | None = None,
    ) -> EpochMatchReport:
        """Solve one matching epoch zone group by zone group.

        ``trip_km`` is the epoch's per-request trip vector in request
        order (the engine reads it from the frame cache, exact by
        contract).  ``budget`` is the epoch's frame budget, freshly
        anchored at the epoch start; the groups consume it in
        work-weighted cumulative slices (see module docstring).
        ``on_new_trips`` receives the ids/trips of requests a warm
        group scored for the first time, so the engine's trip memo
        stays primed on warm epochs exactly as on cold ones.

        Returns the epoch's union matching and group accounting.  The
        union over groups equals the global NSTD solve of the same
        inputs bit for bit — warm or cold, degraded groups excepted
        (their entities get the greedy answer instead, and their
        carried state is dropped).
        """
        report = EpochMatchReport()
        if not taxis or not requests:
            # Nothing solvable; carried states stay put, exactly like a
            # warm dispatcher skipping an empty frame (only arrivals
            # can happen before the next non-empty epoch, so churn
            # classification against them stays sound).
            return report
        _, request_ids = _check_global_ids(taxis, requests)
        trip = np.asarray(trip_km, dtype=np.float64)
        alpha_max = float(self.config.alpha)
        if self.alpha_by_taxi:
            alpha_max = max(alpha_max, max(float(a) for a in self.alpha_by_taxi.values()))
        taxi_xy = as_point_array([t.location for t in taxis], check_finite=False)
        pick_xy = as_point_array([r.pickup for r in requests], check_finite=False)
        zone_km = self._resolve_zone_km(trip, alpha_max)
        # Replan policy: the full θ-ball component sweep runs on the
        # first epoch, every ``replan_every``-th epoch, and on every
        # epoch while the city actually fragments (last full plan had
        # more than one group — decomposition is paying for itself).
        # In between, on single-component cities, the coarse city-wide
        # plan is substituted: exact by construction, and it skips the
        # component sweep that would dominate the epoch on such cities.
        full = (
            self._last_full_groups is None
            or self._last_full_groups > 1
            or self._epoch_index % self.replan_every == 0
        )
        self._epoch_index += 1
        if full:
            plan = plan_epoch_zones(
                taxi_xy,
                pick_xy,
                trip,
                request_ids,
                self.oracle,
                self.config,
                alpha_max=alpha_max,
                zone_km=zone_km,
            )
            if plan.degenerate_reason is None:
                self._last_full_groups = len(plan.groups)
        else:
            plan = coarse_epoch_plan(taxi_xy, pick_xy, zone_km)
        report.plan = plan
        self._bump("zone_epochs")
        if plan.coarse:
            self._bump("zone_coarse_epochs")
        else:
            self._bump("zone_boundary_reconciliations", plan.boundary_merges)
        if plan.degenerate_reason is None and not plan.coarse:
            self._bump("zone_decomposed_epochs")
            self._bump("zone_groups", len(plan.groups))
        epoch_deadline_s = budget.duration_s if budget is not None else 0.0
        slices = (
            zone_budget_slices(epoch_deadline_s, [g.pair_count for g in plan.groups])
            if budget is not None
            else None
        )
        next_states: dict[int, FrameSolveState] = {}
        claimed: set[int] = set()
        for position, group in enumerate(plan.groups):
            group_taxis = [taxis[i] for i in group.taxi_rows.tolist()]
            group_requests = [requests[j] for j in group.request_rows.tolist()]
            group_trip = trip[group.request_rows]
            if budget is not None and slices is not None:
                budget.extend_to(slices[position])
                try:
                    budget.checkpoint("zone:start")
                except FrameBudgetExceededError:
                    self._degrade_group(group, group_taxis, group_requests, report)
                    continue
            report.groups_solved += 1
            # Probe every zone key the group spans, smallest first: a
            # group whose composition shifted (zone drained, neighbour
            # merged in) still finds its carried state under any
            # surviving key.  Each state object is claimed at most once
            # per epoch — if one prior group split in two, the second
            # fragment solves cold rather than racing for the state.
            state: FrameSolveState | None = None
            if self.warm_start:
                for key in group.zone_keys:
                    candidate = self._states.get(key)
                    if candidate is not None and id(candidate) not in claimed:
                        state = candidate
                        claimed.add(id(candidate))
                        break
            pairs: dict[int, int] | None = None
            if state is not None:
                try:
                    matching, _, build_stats, new_state = warm_frame_solve(
                        state,
                        group_taxis,
                        group_requests,
                        self.oracle,
                        self.config,
                        optimize_for=self.optimize_for,
                        alpha_by_taxi=self.alpha_by_taxi,
                        on_new_trips=on_new_trips,
                    )
                except WarmStartError:
                    self._bump("warm_fallbacks")
                else:
                    pairs = dict(matching.pairs)
                    for key in group.zone_keys:
                        next_states[key] = new_state
                    report.warm_groups += 1
                    self._bump("warm_frames")
                    self._bump("pairs_scored_warm", build_stats.pairs_scored)
                    self._bump("full_pairs_warm", build_stats.full_pairs)
            if pairs is None:
                pairs, seeded = self._solve_group_cold(
                    group_taxis, group_requests, group_trip
                )
                if seeded is not None:
                    for key in group.zone_keys:
                        next_states[key] = seeded
                report.cold_groups += 1
                self._bump("cold_frames")
            report.pairs.update(pairs)
        if budget is not None:
            # Hand the budget back at its full epoch deadline: the
            # engine may still checkpoint after the solve.
            budget.extend_to(epoch_deadline_s)
        # Wholesale replacement prunes every anchor that did not recur:
        # stale states must not pin last epoch's objects alive, and a
        # degraded group's state (stale or fresh) is dropped with them.
        self._states = next_states
        return report

    def _degrade_group(
        self,
        group: ZoneGroup,
        group_taxis: list[Taxi],
        group_requests: list[PassengerRequest],
        report: EpochMatchReport,
    ) -> None:
        """Answer one over-budget group with the greedy ladder rung.

        The fallback dispatcher is fresh — no frame cache, no budget —
        so its checkpoints are no-ops and it cannot re-raise; the
        group's entities get a valid (merely unstable) answer and its
        warm state is implicitly dropped (never seeded this epoch).
        """
        fallback = GreedyNearestDispatcher(self.oracle, self.config)
        degraded = fallback.dispatch(group_taxis, group_requests)
        for assignment in degraded.assignments:
            report.pairs[assignment.request_ids[0]] = assignment.taxi_id
        report.degraded_groups += 1
        report.zones_degraded += group.zone_count
        self._bump("zone_groups_degraded")
        self._bump("zones_degraded", group.zone_count)
