"""Event-driven streaming dispatch core with persistent zone sharding.

The streaming counterpart to the batch :class:`~repro.simulation.
engine.Simulator`: a monotonic virtual-clock event queue (request
arrivals, taxi releases, self-scheduling matching epochs) drives a
persistent per-zone NSTD matcher with explicit boundary-taxi
reconciliation and per-zone budget slices.  With the epoch length
equal to the batch frame length the engine is bit-identical to the
batch engine — the proven equivalence mode the city-day benchmark
asserts — and a shorter epoch gives sub-frame reaction latency.

See DESIGN.md §14 and docs/ARCHITECTURE.md for the architecture.
"""

from repro.streaming.engine import StreamingEngine
from repro.streaming.events import (
    PRIORITY_MATCHING_EPOCH,
    PRIORITY_REQUEST_ARRIVAL,
    PRIORITY_TAXI_RELEASE,
    Event,
    EventQueue,
    MatchingEpoch,
    RequestArrival,
    TaxiRelease,
)
from repro.streaming.matcher import EpochMatchReport, ZoneMatcher
from repro.streaming.zones import (
    DEGENERATE_ANCHOR,
    EpochZonePlan,
    ZoneGroup,
    coarse_epoch_plan,
    plan_epoch_zones,
    zone_queue_depths,
)

__all__ = [
    "StreamingEngine",
    "ZoneMatcher",
    "EpochMatchReport",
    "EventQueue",
    "Event",
    "RequestArrival",
    "TaxiRelease",
    "MatchingEpoch",
    "PRIORITY_TAXI_RELEASE",
    "PRIORITY_REQUEST_ARRIVAL",
    "PRIORITY_MATCHING_EPOCH",
    "ZoneGroup",
    "EpochZonePlan",
    "plan_epoch_zones",
    "coarse_epoch_plan",
    "zone_queue_depths",
    "DEGENERATE_ANCHOR",
]
