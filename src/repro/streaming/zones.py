"""Zone partition and boundary-taxi reconciliation for the streaming core.

The streaming engine dispatches per **zone**: a fixed square grid of
edge ``zone_km`` (the same floor-division convention as every grid in
the codebase, :func:`~repro.geometry.spatial_index.grid_cells`).  Zones
are *persistent* — the grid never moves — so each zone can carry its
own warm matcher state across epochs (:mod:`repro.streaming.matcher`).

**Boundary-taxi reconciliation.**  A taxi parked near a zone edge is
acceptable to requests in the neighbouring zone, so solving zones in
isolation would silently drop cross-zone pairs.  Instead of matching
per zone and patching the seams afterwards, the planner *merges* zones
into **solve groups** up front: zone cells are connected whenever some
request's acceptability radius (:func:`~repro.matching.sharding.
acceptability_radii`) reaches the neighbouring cell under the Chebyshev
cell-reach bound — exactly the θ-ball cell graph of
:mod:`repro.matching.sharding` evaluated at ``cell_km = zone_km``.
That cell graph is a supergraph of the true acceptability graph for any
oracle dominating L∞, so every acceptable cross-zone pair ends up
*inside* one group and the union of per-group stable matchings is the
global stable matching bit for bit (the component-decomposition
theorem).  Reconciliation is therefore exact by construction, and the
planner counts the zone merges it performed (``boundary_merges``) so
the run's telemetry shows how much cross-zone traffic there was.

Zones whose component holds only one side (e.g. a zone with pending
requests but zero supply in reach) produce no solve group: their
entities have no acceptable partner anywhere, exactly as in the global
solve, and stay pending for a later epoch.

Degenerate inputs fall back to one city-wide group — still the exact
global solve, with the reason recorded — via the same fallbacks as
:func:`~repro.matching.sharding.frame_decomposition` (non-dominating
oracle, unbounded radii, unbucketable coordinates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DispatchConfig
from repro.geometry.distance import DistanceOracle
from repro.geometry.spatial_index import grid_cells, pack_cell_keys
from repro.matching.sharding import frame_decomposition, shard_problems

__all__ = [
    "DEGENERATE_ANCHOR",
    "ZoneGroup",
    "EpochZonePlan",
    "plan_epoch_zones",
    "coarse_epoch_plan",
    "zone_queue_depths",
]


#: Group anchor used when the epoch fell back to one city-wide group
#: (degenerate decomposition).  A real zone anchor is a packed uint64
#: cell key (always non-negative), so the sentinel can never collide.
DEGENERATE_ANCHOR = -1


@dataclass(frozen=True, slots=True)
class ZoneGroup:
    """One solvable group of zones: row positions into the epoch inputs.

    ``zone_keys`` are the ascending packed keys of the group's occupied
    zones (``(DEGENERATE_ANCHOR,)`` for the city-wide fallback group);
    they identify the group across epochs for warm-state reuse.  The
    matcher files a group's carried state under *every* key it spans,
    so a group whose zone composition shifted between epochs — a zone
    drained, a neighbouring zone merged in — still finds its state
    under any surviving key instead of going cold on anchor drift.
    """

    zone_keys: tuple[int, ...]
    taxi_rows: np.ndarray
    """Ascending row positions of this group's idle taxis."""
    request_rows: np.ndarray
    """Ascending row positions of this group's pending requests."""

    @property
    def anchor(self) -> int:
        """The group's smallest zone key, its reporting identity."""
        return self.zone_keys[0]

    @property
    def zone_count(self) -> int:
        """Distinct zones this group spans (1 = no boundary traffic)."""
        return len(self.zone_keys)

    @property
    def pair_count(self) -> int:
        """The dense pair block this group scores, ``Tg × Rg``."""
        return int(self.taxi_rows.size) * int(self.request_rows.size)


@dataclass(frozen=True, slots=True)
class EpochZonePlan:
    """One epoch's zone grouping, smallest group first.

    ``boundary_merges`` is ``Σ (zone_count − 1)`` over the groups: the
    number of zone-adjacency edges the reconciliation had to honour
    this epoch.  ``degenerate_reason`` is ``None`` for a real zone
    decomposition, else the :func:`~repro.matching.sharding.
    frame_decomposition` fallback reason.  ``coarse`` marks a plan from
    :func:`coarse_epoch_plan` — one deliberate city-wide group with no
    component computation behind it (and therefore no measured
    boundary merges).
    """

    groups: list[ZoneGroup]
    zone_km: float
    zones_occupied: int
    """Distinct zones holding at least one idle taxi or pending request."""
    boundary_merges: int
    degenerate_reason: str | None = None
    coarse: bool = False


def _group_zone_keys(
    taxi_cells: np.ndarray, request_cells: np.ndarray, group_t: np.ndarray, group_r: np.ndarray
) -> np.ndarray:
    """Distinct packed zone keys occupied by one group's entities."""
    keys = np.concatenate(
        [
            pack_cell_keys(taxi_cells[group_t]) if group_t.size else np.empty(0, np.uint64),
            pack_cell_keys(request_cells[group_r]) if group_r.size else np.empty(0, np.uint64),
        ]
    )
    return np.unique(keys)


def plan_epoch_zones(
    taxi_xy: np.ndarray,
    pick_xy: np.ndarray,
    trip_km: np.ndarray,
    request_ids: np.ndarray,
    oracle: DistanceOracle,
    config: DispatchConfig,
    *,
    alpha_max: float,
    zone_km: float,
) -> EpochZonePlan:
    """Group this epoch's zones into independently solvable units.

    Reuses the θ-ball component machinery at fixed ``cell_km =
    zone_km`` granularity: the components of the zone graph *are* the
    solve groups, and any group spanning more than one zone records the
    boundary merges that built it.  Returns groups smallest first
    (ascending dense pair count, ties by minimum request id — the
    :func:`~repro.matching.sharding.shard_problems` order), so a
    budgeted caller finishes the many small zones exactly and only a
    hot group degrades.

    Degenerate epochs (see module docstring) return one city-wide
    group anchored at :data:`DEGENERATE_ANCHOR` with zero recorded
    merges — the zone structure is unknown there, not absent.
    """
    decomp = frame_decomposition(
        taxi_xy,
        pick_xy,
        trip_km,
        oracle,
        config,
        alpha_max=alpha_max,
        cell_km=zone_km,
    )
    shards = shard_problems(decomp, request_ids)
    if decomp.degenerate_reason is not None:
        return EpochZonePlan(
            groups=[
                ZoneGroup(
                    zone_keys=(DEGENERATE_ANCHOR,),
                    taxi_rows=shard.taxi_rows,
                    request_rows=shard.request_rows,
                )
                for shard in shards
            ],
            zone_km=0.0,
            zones_occupied=0,
            boundary_merges=0,
            degenerate_reason=decomp.degenerate_reason,
        )
    # A non-degenerate decomposition bucketed these same coordinates at
    # this same cell size inside theta_components, so the grid calls
    # below cannot fail.
    taxi_cells = grid_cells(taxi_xy, zone_km)
    request_cells = grid_cells(pick_xy, zone_km)
    zones_occupied = int(
        np.unique(
            np.concatenate([pack_cell_keys(taxi_cells), pack_cell_keys(request_cells)])
        ).size
    )
    groups: list[ZoneGroup] = []
    boundary_merges = 0
    for shard in shards:
        zone_keys = _group_zone_keys(
            taxi_cells, request_cells, shard.taxi_rows, shard.request_rows
        )
        keys = tuple(int(k) for k in zone_keys.tolist())
        boundary_merges += max(0, len(keys) - 1)
        groups.append(
            ZoneGroup(
                zone_keys=keys if keys else (DEGENERATE_ANCHOR,),
                taxi_rows=shard.taxi_rows,
                request_rows=shard.request_rows,
            )
        )
    return EpochZonePlan(
        groups=groups,
        zone_km=float(zone_km),
        zones_occupied=zones_occupied,
        boundary_merges=boundary_merges,
        degenerate_reason=None,
    )


def coarse_epoch_plan(
    taxi_xy: np.ndarray, pick_xy: np.ndarray, zone_km: float
) -> EpochZonePlan:
    """One deliberate city-wide group, skipping component analysis.

    Solving every entity as a single group is *always* exact — it is
    literally the global solve — so a caller may substitute this plan
    for :func:`plan_epoch_zones` on any epoch without changing the
    matching.  The matcher uses it between periodic full replans on
    cities whose last full decomposition was a single component anyway:
    the zone keys (cheap grid bucketing) are still computed, so warm
    state stays filed per zone and the occupancy telemetry stays live,
    but the θ-ball component sweep — the expensive part — is skipped.

    Falls back exactly like the full planner when the coordinates
    cannot be bucketed.
    """
    all_taxi_rows = np.arange(len(taxi_xy), dtype=np.int64)
    all_request_rows = np.arange(len(pick_xy), dtype=np.int64)
    try:
        keys = np.unique(
            np.concatenate(
                [
                    pack_cell_keys(grid_cells(taxi_xy, zone_km)),
                    pack_cell_keys(grid_cells(pick_xy, zone_km)),
                ]
            )
        )
    except ValueError:
        return EpochZonePlan(
            groups=[
                ZoneGroup(
                    zone_keys=(DEGENERATE_ANCHOR,),
                    taxi_rows=all_taxi_rows,
                    request_rows=all_request_rows,
                )
            ],
            zone_km=0.0,
            zones_occupied=0,
            boundary_merges=0,
            degenerate_reason="unbucketable-coordinates",
            coarse=True,
        )
    return EpochZonePlan(
        groups=[
            ZoneGroup(
                zone_keys=tuple(int(k) for k in keys.tolist()),
                taxi_rows=all_taxi_rows,
                request_rows=all_request_rows,
            )
        ],
        zone_km=float(zone_km),
        zones_occupied=int(keys.size),
        boundary_merges=0,
        degenerate_reason=None,
        coarse=True,
    )


def zone_queue_depths(pick_xy: np.ndarray, zone_km: float) -> np.ndarray:
    """Pending-request count per occupied zone (descending not required).

    Raises ``ValueError`` on coordinates the grid cannot bucket, as
    :func:`~repro.geometry.spatial_index.grid_cells` does; the engine
    treats that as "no zone telemetry this epoch", never as an error.
    """
    if len(pick_xy) == 0:
        return np.empty(0, dtype=np.int64)
    keys = pack_cell_keys(grid_cells(pick_xy, zone_km))
    _, counts = np.unique(keys, return_counts=True)
    return counts.astype(np.int64, copy=False)
