"""The degradation ladder: what serves a frame when the primary can't.

Real dispatch platforms degrade rather than fail: when the stable
matching cannot finish inside the frame, they fall back to a cheaper
objective and keep serving (stable matching is the expensive path in
live rideshare loops; high-demand studies show platforms switching to
simpler objectives under load).  The ladder encodes that policy as an
ordered list of rungs:

1. **primary** — whatever dispatcher the simulation was configured
   with, under the frame's primary deadline slice;
2. **nstd-arrays** — passenger-optimal NSTD on the array-native fast
   path, the cheapest full-quality stable matching we have;
3. **nstd-threshold** — NSTD with the passenger threshold tightened to
   ``2θ``, which truncates preference lists (taxis beyond the dummy are
   never ranked) and shrinks the deferred-acceptance market;
4. **greedy** — nearest-idle-taxi, linear-time, **unbudgeted**: the
   terminal rung that guarantees every frame is answered.

Each budgeted rung gets a successively later slice of the same frame
deadline (see :meth:`ResiliencePolicy.rung_deadline_s`), so falling
down the ladder never spends more than the frame.
"""

from __future__ import annotations

import dataclasses
import math
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.config import DispatchConfig
from repro.dispatch.base import Dispatcher
from repro.geometry.distance import DistanceOracle
from repro.resilience.budget import FrameBudget
from repro.resilience.faults import FaultInjector

__all__ = ["Rung", "default_ladder", "ResiliencePolicy"]


@dataclass(frozen=True, slots=True)
class Rung:
    """One fallback level: a name plus a dispatcher factory.

    ``factory`` is ``None`` for the primary rung (the engine substitutes
    its configured dispatcher); factories must be module-level callables
    so policies stay picklable for the process-pool runners.
    ``budgeted`` rungs observe the frame deadline; the terminal rung
    should be unbudgeted so something always answers the frame.
    """

    name: str
    factory: Callable[[DistanceOracle, DispatchConfig], Dispatcher] | None = None
    budgeted: bool = True


def _nstd_arrays_rung(oracle: DistanceOracle, config: DispatchConfig) -> Dispatcher:
    from repro.dispatch.nonsharing.nstd import NSTDDispatcher

    return NSTDDispatcher(oracle, config, optimize_for="passenger", use_arrays=True)


def _nstd_thresholded_rung(oracle: DistanceOracle, config: DispatchConfig) -> Dispatcher:
    from repro.dispatch.nonsharing.nstd import NSTDDispatcher

    # Tightening the passenger threshold to 2θ truncates preference
    # lists at the dummy, shrinking the market the matching runs on.
    tight = 2.0 * config.theta_km if config.theta_km > 0.0 else 5.0
    cheap = dataclasses.replace(
        config,
        passenger_threshold_km=min(config.passenger_threshold_km, tight),
        taxi_threshold_km=min(config.taxi_threshold_km, tight),
    )
    return NSTDDispatcher(oracle, cheap, optimize_for="passenger", use_arrays=True)


def _greedy_rung(oracle: DistanceOracle, config: DispatchConfig) -> Dispatcher:
    from repro.dispatch.nonsharing.greedy import GreedyNearestDispatcher

    return GreedyNearestDispatcher(oracle, config)


def default_ladder() -> tuple[Rung, ...]:
    """NSTD with arrays → distance-thresholded NSTD → greedy (terminal)."""
    return (
        Rung("primary", None),
        Rung("nstd-arrays", _nstd_arrays_rung),
        Rung("nstd-threshold", _nstd_thresholded_rung),
        Rung("greedy", _greedy_rung, budgeted=False),
    )


@dataclass(slots=True)
class ResiliencePolicy:
    """Everything the engine needs to keep frames inside their deadline.

    ``budget_fraction`` is the primary dispatcher's slice of the frame
    (``frame_budget_s`` overrides it with an absolute deadline);
    budgeted fallback rungs share the remainder up to
    ``headroom_fraction`` of the frame, after which only the unbudgeted
    terminal rung remains.  ``transient_retries`` bounds same-rung
    retries on :class:`~repro.core.errors.TransientFaultError`.

    ``clock`` (or the fault injector's deterministic virtual clock, when
    one is installed and no explicit clock is given) drives all frame
    budgets, which is what makes chaos runs reproducible.
    """

    budget_fraction: float = 0.5
    frame_budget_s: float | None = None
    headroom_fraction: float = 0.95
    transient_retries: int = 2
    ladder: tuple[Rung, ...] = field(default_factory=default_ladder)
    fault_injector: FaultInjector | None = None
    clock: Callable[[], float] | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError(
                f"budget_fraction must be in (0, 1], got {self.budget_fraction}"
            )
        if not 0.0 < self.headroom_fraction <= 1.0:
            raise ValueError(
                f"headroom_fraction must be in (0, 1], got {self.headroom_fraction}"
            )
        if self.transient_retries < 0:
            raise ValueError(
                f"transient_retries must be non-negative, got {self.transient_retries}"
            )
        if not self.ladder:
            raise ValueError("ladder must have at least one rung")

    def with_injector(self, injector: FaultInjector | None) -> "ResiliencePolicy":
        """This policy bound to a (cell-specific) fault injector."""
        return dataclasses.replace(self, fault_injector=injector)

    def resolved_clock(self) -> Callable[[], float]:
        if self.clock is not None:
            return self.clock
        if self.fault_injector is not None:
            return self.fault_injector.clock
        return time.perf_counter

    def primary_budget_s(self, frame_length_s: float) -> float:
        if self.frame_budget_s is not None:
            return self.frame_budget_s
        return self.budget_fraction * frame_length_s

    def rung_deadline_s(self, budgeted_position: int, budgeted_count: int, frame_length_s: float) -> float:
        """Deadline (seconds from frame start) for the i-th budgeted rung.

        Budgeted rungs interpolate evenly between the primary slice and
        ``headroom_fraction`` of the frame; an unbudgeted rung gets
        ``inf`` (handled by the caller).
        """
        primary = self.primary_budget_s(frame_length_s)
        if budgeted_position <= 0 or budgeted_count <= 1:
            return primary
        last = max(primary, self.headroom_fraction * frame_length_s)
        step = (last - primary) / budgeted_count
        return primary + step * budgeted_position

    def make_budget(self, frame_length_s: float) -> FrameBudget:
        """A fresh frame budget anchored now, at the primary deadline."""
        return FrameBudget(
            self.primary_budget_s(frame_length_s), clock=self.resolved_clock()
        )

    def build_rungs(
        self, primary: Dispatcher, oracle: DistanceOracle
    ) -> list[tuple[Rung, Dispatcher]]:
        """Instantiate the ladder against the run's oracle and config.

        The primary rung reuses the engine's configured dispatcher;
        fallback dispatchers are constructed once per run and share the
        primary's :class:`~repro.core.config.DispatchConfig`.
        """
        rungs: list[tuple[Rung, Dispatcher]] = []
        for rung in self.ladder:
            if rung.factory is None:
                rungs.append((rung, primary))
            else:
                rungs.append((rung, rung.factory(oracle, primary.config)))
        return rungs

    @staticmethod
    def unbudgeted_deadline() -> float:
        return math.inf
