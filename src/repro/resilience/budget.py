"""Frame deadlines and work budgets for the resilience layer.

The paper dispatches in hard one-minute frames: a production broker
must emit *some* schedule before the frame closes, so every expensive
stage needs a way to notice that it is running out of time (or work)
and stop early.  Two budget primitives cover all call sites:

* :class:`FrameBudget` — a wall-clock deadline, checked through
  **cooperative checkpoints**: dispatchers call
  :meth:`FrameBudget.checkpoint` at stage boundaries and the budget
  raises :class:`~repro.core.errors.FrameBudgetExceededError` once the
  deadline has passed.  The clock is injectable so tests (and the
  fault-injection harness, which maintains a deterministic virtual
  clock) can exercise overruns without real sleeping.
* :class:`WorkBudget` — a node/step counter with an optional attached
  frame deadline, consumed by the *anytime* exponential paths (lattice
  enumeration, feasible-group enumeration, set packing).  Exhaustion is
  reported by return value (``spend() -> bool``), never by exception,
  so those paths can return their best-so-far result with a
  ``truncated`` flag.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable

from repro.core.errors import FrameBudgetExceededError

__all__ = ["FrameBudget", "WorkBudget", "zone_budget_slices"]


def zone_budget_slices(duration_s: float, weights: list[int] | list[float]) -> list[float]:
    """Cumulative per-zone deadline slices of one epoch budget.

    The streaming engine gives each zone group its own slice of the
    epoch's :class:`FrameBudget` the way the degradation ladder slices
    a frame across rungs: one budget anchored at the epoch start,
    ``extend_to``-ed to successive cumulative deadlines.  Slice ``i``
    is ``duration_s · (Σ_{j≤i} w_j / Σ w)`` — proportional to each
    group's share of the epoch's work (dense pair counts), so a hot
    zone that blows *its* slice degrades alone while later zones still
    meet theirs.  The final slice is exactly ``duration_s``, so the
    epoch total is never exceeded.

    Non-positive weights get an even share of the weight they span; an
    all-zero weight list degrades to even slicing.  ``math.inf``
    duration (no deadline) yields all-``inf`` slices: every checkpoint
    passes, matching :class:`FrameBudget` semantics.
    """
    if duration_s < 0.0:
        raise ValueError(f"duration_s must be non-negative, got {duration_s}")
    count = len(weights)
    if count == 0:
        return []
    if math.isinf(duration_s):
        return [duration_s] * count
    total = float(sum(max(0.0, float(w)) for w in weights))
    if total <= 0.0:
        return [duration_s * (i + 1) / count for i in range(count)]
    slices: list[float] = []
    cumulative = 0.0
    for weight in weights:
        cumulative += max(0.0, float(weight))
        slices.append(duration_s * (cumulative / total))
    slices[-1] = duration_s
    return slices


class FrameBudget:
    """A wall-clock deadline measured from construction (or ``restart``).

    ``duration_s`` may be ``math.inf`` to express "no deadline" (every
    check passes); the engine uses that for the terminal ladder rung.
    """

    __slots__ = ("duration_s", "clock", "checkpoints", "_start")

    def __init__(
        self, duration_s: float, *, clock: Callable[[], float] = time.perf_counter
    ):
        if duration_s < 0.0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        self.duration_s = float(duration_s)
        self.clock = clock
        self.checkpoints = 0
        self._start = clock()

    def restart(self) -> None:
        """Re-anchor the deadline at the current clock reading."""
        self._start = self.clock()

    def extend_to(self, duration_s: float) -> None:
        """Move the deadline to ``duration_s`` after the original start.

        The degradation ladder gives each successive rung a slightly
        later slice of the same frame; the start anchor is shared so the
        total never exceeds the frame.
        """
        if duration_s < 0.0:
            raise ValueError(f"duration_s must be non-negative, got {duration_s}")
        self.duration_s = float(duration_s)

    def elapsed(self) -> float:
        """Seconds since the budget started, on its injected clock."""
        return self.clock() - self._start

    def remaining(self) -> float:
        """Seconds left before the deadline (negative once past it)."""
        return self.duration_s - self.elapsed()

    def expired(self) -> bool:
        """Whether the deadline has passed (checkpoint would raise)."""
        return self.elapsed() > self.duration_s

    def checkpoint(self, label: str | None = None) -> None:
        """Cooperative deadline check; raises once the deadline is past."""
        self.checkpoints += 1
        elapsed = self.elapsed()
        if elapsed > self.duration_s:
            where = f" at {label}" if label else ""
            raise FrameBudgetExceededError(
                f"frame budget of {self.duration_s:.3f}s exceeded{where} "
                f"({elapsed:.3f}s elapsed)",
                elapsed_s=elapsed,
                budget_s=self.duration_s,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrameBudget(duration_s={self.duration_s}, elapsed={self.elapsed():.3f})"


class WorkBudget:
    """A consumable node budget for anytime enumeration/search stages.

    ``spend(n)`` charges ``n`` nodes and returns ``True`` while work may
    continue; once it returns ``False`` the caller stops expanding and
    returns its best-so-far result flagged as truncated.  An attached
    :class:`FrameBudget` deadline is polled on the same calls (without
    raising), so one object expresses both "at most N nodes" and
    "until the frame closes".
    """

    __slots__ = ("max_nodes", "deadline", "nodes", "_exhausted")

    def __init__(
        self, max_nodes: int | None = None, *, deadline: FrameBudget | None = None
    ):
        if max_nodes is not None and max_nodes < 0:
            raise ValueError(f"max_nodes must be non-negative, got {max_nodes}")
        self.max_nodes = max_nodes
        self.deadline = deadline
        self.nodes = 0
        self._exhausted = False

    @property
    def exhausted(self) -> bool:
        """Whether the node budget is spent (sticky once tripped)."""
        if self._exhausted:
            return True
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            self._exhausted = True
        elif self.deadline is not None and self.deadline.expired():
            self._exhausted = True
        return self._exhausted

    @property
    def unbounded(self) -> bool:
        """Whether this budget can never exhaust (no node cap, no deadline)."""
        return self.max_nodes is None and (
            self.deadline is None or math.isinf(self.deadline.duration_s)
        )

    def spend(self, nodes: int = 1) -> bool:
        """Charge ``nodes``; ``True`` while the budget still has room."""
        self.nodes += nodes
        return not self.exhausted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkBudget(max_nodes={self.max_nodes}, nodes={self.nodes}, "
            f"exhausted={self.exhausted})"
        )
