"""Sampled runtime re-verification of matching stability.

The warm-start and sharded fast paths (DESIGN.md §10–11) carry mutable
cross-frame state whose silent corruption nothing at runtime would
otherwise catch — the bit-identity guarantees are proven in tests and
benchmarks, not re-checked in production.  The
:class:`StabilityAuditor` closes that gap: on a deterministic sample of
fast-path frames it rebuilds the frame's preference structure *cold*
(through :meth:`~repro.dispatch.base.Dispatcher.audit_preferences`, a
code path independent of the warm solvers) and re-runs the Definition-1
blocking-pair test of :mod:`repro.matching.verification` against the
matching the fast path shipped.

On a clean audit the frame proceeds untouched.  On a divergence — a
blocking pair, or a structurally invalid matching — the auditor
**heals** the frame instead of shipping it: the dispatcher's warm state
is invalidated (:meth:`~repro.dispatch.base.Dispatcher.
invalidate_warm_state`), the frame is recomputed cold, the replacement
is verified, and a :class:`~repro.resilience.report.
StabilityAuditRecord` documents the event.  Divergences are *expected
never* — committed benchmark rows assert ``audit_divergences == 0`` —
but when one happens the run self-corrects rather than silently
propagating a corrupt matching into taxi motion.

Sampling is stateless and hash-based — ``crc32(f"{seed}:{frame}")``
against a rate threshold — so the audited frame set depends only on
``(seed, frame index)``: it is reproducible across runs, stable across
a checkpoint/resume boundary (no RNG state to persist), and consumes no
random stream any other component shares.
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Sequence

from repro.core.errors import EnumerationBudgetError, MatchingError
from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher, PackedSingleSchedule
from repro.matching.result import Matching
from repro.matching.verification import find_blocking_pairs, is_valid_matching
from repro.resilience.report import StabilityAuditRecord, StabilityAuditReport

__all__ = [
    "AUDITED_MODES",
    "DEFAULT_AUDIT_RATE",
    "StabilityAuditor",
    "schedule_pairs",
]

#: Default fraction of eligible frames the auditor re-verifies.  A full
#: audit costs roughly one cold preference build, so 1/64 keeps the
#: added wall-clock well under the 5% budget on warm city-day runs.
DEFAULT_AUDIT_RATE = 1.0 / 64.0

#: Frame modes carrying cross-frame or decomposition state worth
#: re-verifying.  Plain cold frames run the very code path the auditor
#: would rebuild, so auditing them checks nothing new.
AUDITED_MODES = frozenset({"warm", "warm_sharded", "sharded_cold"})

#: ``blocking_pairs`` sentinel for a structurally invalid matching
#: (unknown ids or an unacceptable pair) — worse than any blocking-pair
#: count, and impossible to enumerate pairs for.
INVALID_MATCHING = -1


def schedule_pairs(
    schedule: DispatchSchedule,
    taxis: Sequence[Taxi],
    requests: Sequence[PassengerRequest],
) -> dict[int, int] | None:
    """The ``{request_id: taxi_id}`` pairs of a single-rider schedule.

    Returns ``None`` for schedules the stability test does not apply to
    (a ride-sharing assignment carrying several requests).
    """
    if isinstance(schedule, PackedSingleSchedule):
        return {
            requests[r_row].request_id: taxis[t_row].taxi_id
            for t_row, r_row in zip(
                schedule.taxi_rows.tolist(), schedule.request_rows.tolist()
            )
        }
    pairs: dict[int, int] = {}
    for assignment in schedule.assignments:
        if len(assignment.request_ids) != 1:
            return None
        pairs[assignment.request_ids[0]] = assignment.taxi_id
    return pairs


class StabilityAuditor:
    """Re-verifies sampled fast-path frames; heals and records divergence.

    One auditor serves one run: the engine constructs (or resets) it at
    run start and harvests :attr:`report` into the result.  ``rate`` is
    the sampled fraction of eligible frames; ``modes`` restricts
    eligibility (default: the warm/sharded fast paths).
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        rate: float = DEFAULT_AUDIT_RATE,
        modes: frozenset[str] | Sequence[str] = AUDITED_MODES,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.seed = seed
        self.rate = rate
        self.modes = frozenset(modes)
        self.report = StabilityAuditReport()

    def reset(self) -> None:
        """Fresh report for a new run (the sampler is stateless)."""
        self.report = StabilityAuditReport()

    def should_audit(self, frame_index: int, mode: str | None) -> bool:
        """Deterministic, resume-stable sampling decision for one frame."""
        if mode not in self.modes or self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        draw = zlib.crc32(f"{self.seed}:{frame_index}".encode("utf-8"))
        return draw < self.rate * 2.0**32

    def _violations(
        self,
        dispatcher: Dispatcher,
        taxis: Sequence[Taxi],
        requests: Sequence[PassengerRequest],
        pairs: dict[int, int],
    ) -> int:
        """Blocking-pair count of ``pairs`` against a cold preference
        rebuild; :data:`INVALID_MATCHING` for a structurally bad one."""
        prefs = dispatcher.audit_preferences(taxis, requests)
        try:
            matching = Matching(pairs)
        except EnumerationBudgetError:
            raise
        except MatchingError:
            # e.g. one taxi matched twice: not even a matching.
            return INVALID_MATCHING
        if not is_valid_matching(prefs, matching):
            return INVALID_MATCHING
        return len(find_blocking_pairs(prefs, matching))

    def audit_frame(
        self,
        *,
        frame_index: int,
        time_s: float,
        dispatcher: Dispatcher,
        taxis: Sequence[Taxi],
        requests: Sequence[PassengerRequest],
        schedule: DispatchSchedule,
    ) -> tuple[DispatchSchedule, StabilityAuditRecord | None]:
        """Audit one frame's shipped schedule; heal it on divergence.

        Returns the schedule the engine should execute — the original on
        a clean audit, a cold recomputation on divergence — plus the
        audit record (``None`` when the frame was not sampled or not
        auditable).  The healed schedule is itself re-verified, so a
        divergence that survives the cold recompute (which would mean
        the *cold* solver is broken, not the warm state) is recorded
        with ``healed=False`` rather than papered over.
        """
        mode = dispatcher.last_frame_mode
        if not self.should_audit(frame_index, mode):
            return schedule, None
        # repro-lint: disable=REP001 telemetry only: audit_ms never feeds a decision
        start = time.perf_counter()
        pairs = schedule_pairs(schedule, taxis, requests)
        if pairs is None:
            return schedule, None
        violations = self._violations(dispatcher, taxis, requests, pairs)
        record = StabilityAuditRecord(
            time_s=time_s,
            frame=frame_index,
            mode=mode or "unknown",
            requests=len(requests),
            taxis=len(taxis),
            blocking_pairs=violations if violations > 0 else 0,
        )
        if violations:
            record.diverged = True
            if violations == INVALID_MATCHING:
                record.blocking_pairs = INVALID_MATCHING
            # The fast path shipped a corrupt matching: drop the warm
            # state it grew from, redo the frame cold, and verify the
            # replacement before letting it execute.
            dispatcher.invalidate_warm_state(reason="audit-divergence")
            schedule = dispatcher.dispatch(taxis, requests)
            healed_pairs = schedule_pairs(schedule, taxis, requests)
            record.healed = (
                healed_pairs is not None
                and self._violations(dispatcher, taxis, requests, healed_pairs) == 0
            )
        # repro-lint: disable=REP001 telemetry only: audit_ms never feeds a decision
        record.audit_ms = (time.perf_counter() - start) * 1e3
        self.report.record(record)
        return schedule, record
