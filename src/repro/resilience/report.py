"""Per-frame accounting of which degradation-ladder rung served a frame.

The :class:`~repro.simulation.engine.Simulator` records one
:class:`FrameResilienceRecord` per dispatched frame when a
:class:`~repro.resilience.ladder.ResiliencePolicy` is installed, and
attaches the collected :class:`ResilienceReport` to the
:class:`~repro.simulation.engine.SimulationResult`.  The report answers
the operational questions a production broker cares about: which frames
degraded, to which rung, triggered by what, and whether any frame was
dropped entirely (the invariant chaos runs assert is *never*).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FrameResilienceRecord",
    "ResilienceReport",
    "DROPPED_RUNG",
    "StabilityAuditRecord",
    "StabilityAuditReport",
]

#: Rung name recorded when even the terminal ladder rung failed and the
#: engine emitted an empty schedule.  Chaos runs assert this never appears.
DROPPED_RUNG = "dropped"


@dataclass(slots=True)
class FrameResilienceRecord:
    """How one frame's dispatch was served.

    ``trigger`` names what pushed the frame off the previous rung(s):
    ``None`` for a frame served by the primary dispatcher on the first
    attempt, ``"deadline"`` for a frame-budget overrun, ``"enum-budget"``
    for an enumeration work budget that escaped its rung, ``"fault"``
    for an injected/observed transient fault, ``"error"`` for any other
    dispatcher error absorbed by the ladder.
    """

    time_s: float
    rung: str
    rung_index: int
    trigger: str | None = None
    attempts: int = 1
    faults: int = 0
    budget_s: float = 0.0
    elapsed_s: float = 0.0

    @property
    def degraded(self) -> bool:
        """Whether the frame fell below the primary rung (or dropped)."""
        return self.rung_index > 0 or self.rung == DROPPED_RUNG


@dataclass(slots=True)
class ResilienceReport:
    """All resilience records of one simulation run."""

    frames: list[FrameResilienceRecord] = field(default_factory=list)

    def record(self, entry: FrameResilienceRecord) -> None:
        """Append one frame's resilience record."""
        self.frames.append(entry)

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def degraded_frames(self) -> list[FrameResilienceRecord]:
        """Frames served below the primary rung, in frame order."""
        return [f for f in self.frames if f.degraded]

    @property
    def dropped_frames(self) -> int:
        """Frames no ladder rung could answer (must stay zero)."""
        return sum(1 for f in self.frames if f.rung == DROPPED_RUNG)

    @property
    def faults_absorbed(self) -> int:
        """Total injected faults the run survived."""
        return sum(f.faults for f in self.frames)

    def served_by_rung(self) -> dict[str, int]:
        """Frame counts keyed by the rung that served them."""
        counts: dict[str, int] = {}
        for frame in self.frames:
            counts[frame.rung] = counts.get(frame.rung, 0) + 1
        return counts

    def summary(self) -> dict[str, float]:
        """Headline resilience numbers for reports and chaos assertions."""
        return {
            "frames": float(len(self.frames)),
            "degraded_frames": float(len(self.degraded_frames)),
            "dropped_frames": float(self.dropped_frames),
            "faults_absorbed": float(self.faults_absorbed),
        }


@dataclass(slots=True)
class StabilityAuditRecord:
    """One sampled frame's stability re-verification outcome.

    ``mode`` is the fast path the frame was served by (``"warm"``,
    ``"warm_sharded"``, ``"cold"``, ...).  ``diverged`` marks the case
    the auditor exists for: the fast path shipped a matching with
    blocking pairs, the auditor invalidated warm state and recomputed
    the frame cold, and ``healed`` records that the replacement passed.
    ``blocking_pairs`` counts the violations found in the *original*
    matching (zero on a clean audit).
    """

    time_s: float
    frame: int
    mode: str
    requests: int
    taxis: int
    blocking_pairs: int = 0
    diverged: bool = False
    healed: bool = False
    audit_ms: float = 0.0


@dataclass(slots=True)
class StabilityAuditReport:
    """All stability-audit records of one simulation run."""

    frames: list[StabilityAuditRecord] = field(default_factory=list)

    def record(self, entry: StabilityAuditRecord) -> None:
        """Append one audited frame's record."""
        self.frames.append(entry)

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def divergences(self) -> list[StabilityAuditRecord]:
        """Audited frames whose warm matching diverged (expected none)."""
        return [f for f in self.frames if f.diverged]

    @property
    def audit_ms(self) -> float:
        """Total wall-clock the auditor spent re-verifying frames."""
        return sum(f.audit_ms for f in self.frames)

    def summary(self) -> dict[str, float]:
        """Headline audit numbers (``divergences`` is expected zero)."""
        return {
            "frames_audited": float(len(self.frames)),
            "audit_divergences": float(len(self.divergences)),
            "audit_healed": float(sum(1 for f in self.divergences if f.healed)),
            "audit_ms": self.audit_ms,
        }
