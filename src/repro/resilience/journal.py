"""Append-only, checksummed, schema-versioned crash-recovery journal.

A month-scale simulation (1,445,285 requests, ~44k frames) must survive
a crash at frame 40,000 without losing everything.  The journal is the
write-ahead half of that story: one JSONL record per completed frame,
carrying a compact *outcome digest* — the frame's matched pairs folded
into a CRC, a running cumulative CRC over every assignment so far, the
queue/idle/dispatch counters, the resilience rung that served the
frame, and (when a fault injector is installed) a fingerprint of its
seeded RNG state.  On recovery the engine replays the frames after the
latest snapshot and verifies each replayed frame against its journaled
digest, so a resumed run is *proven* bit-identical to the uninterrupted
one rather than assumed.

Failure semantics are deliberately asymmetric:

* a **truncated tail** (the final line torn mid-write) is the expected
  signature of a crash during an append — the record is dropped with a
  :class:`RuntimeWarning` and recovery proceeds from the previous frame;
* a **checksum mismatch** or malformed record anywhere else is
  corruption and raises :class:`~repro.core.errors.JournalCorruptionError`;
* an **unknown schema version** raises
  :class:`~repro.core.errors.JournalSchemaError` — replaying records
  whose semantics this build does not know would verify the wrong
  thing, so version skew is a hard refusal.

Records are canonical JSON (sorted keys, no whitespace) with a ``crc``
field holding the CRC-32 of the record serialized *without* it; a
flipped byte anywhere in a line therefore fails validation.  Appends
are flushed to the OS on every record, which survives SIGKILL; callers
that must survive power loss enable per-append fsync via
:class:`JournalWriter`'s ``fsync_every_append``.
"""

from __future__ import annotations

import json
import warnings
import zlib
from dataclasses import asdict, dataclass
from os import fsync
from pathlib import Path
from types import TracebackType
from typing import IO

from repro.core.errors import JournalCorruptionError, JournalSchemaError

__all__ = [
    "JOURNAL_SCHEMA",
    "FrameDigest",
    "JournalContents",
    "JournalWriter",
    "frame_pairs_crc",
    "read_journal",
]

#: Schema version stamped into every journal header; readers hard-refuse
#: anything else (see :class:`~repro.core.errors.JournalSchemaError`).
JOURNAL_SCHEMA = "repro-journal/1"

_RECORD_KINDS = ("header", "frame", "resume", "end")


def _canonical(record: dict) -> str:
    """The canonical serialization the checksum is computed over."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _checksummed_line(record: dict) -> str:
    body = dict(record)
    body["crc"] = zlib.crc32(_canonical(record).encode("utf-8"))
    return _canonical(body) + "\n"


def frame_pairs_crc(pairs: list[tuple[int, int]], *, seed: int = 0) -> int:
    """CRC-32 digest of one frame's matched ``(request_id, taxi_id)`` pairs.

    Pairs are sorted before hashing, so the digest is independent of the
    order a dispatcher emitted its assignments in; ``seed`` chains the
    running cumulative digest across frames.
    """
    text = "|".join(f"{rid}:{tid}" for rid, tid in sorted(pairs))
    return zlib.crc32(text.encode("utf-8"), seed)


@dataclass(frozen=True, slots=True)
class FrameDigest:
    """The per-frame outcome digest journaled after a frame commits.

    ``pairs_crc`` / ``cum_crc`` are the replay-verification surface: they
    are warm/cold-invariant (the bit-identity theorems of DESIGN.md
    §10–11 make the *matching* mode-independent), so a resumed run that
    restarts warm state cold still reproduces them exactly.  ``rung``,
    ``mode``, ``audited`` and ``divergence`` are telemetry — a replayed
    frame may legitimately differ there (a frame that was warm before
    the crash replays cold) and they are excluded from replay equality.
    """

    frame: int
    time_s: float
    queue: int
    idle: int
    dispatched: int
    abandoned: int
    pairs_crc: int
    cum_crc: int
    rng: str | None = None
    rung: str | None = None
    mode: str | None = None
    audited: bool = False
    divergence: bool = False

    #: Fields a replayed frame must reproduce exactly; the rest is
    #: mode-dependent telemetry.
    REPLAY_FIELDS = ("frame", "time_s", "queue", "idle", "dispatched", "abandoned",
                     "pairs_crc", "cum_crc")

    def replay_key(self) -> tuple:
        """The tuple a replayed frame must reproduce exactly
        (``REPLAY_FIELDS`` only — telemetry fields are excluded)."""
        return tuple(getattr(self, name) for name in self.REPLAY_FIELDS)

    def to_record(self) -> dict:
        """This digest as a journal record (``kind="frame"``, no crc —
        the writer adds the checksum at append time)."""
        record = asdict(self)
        record["kind"] = "frame"
        return record

    @classmethod
    def from_record(cls, record: dict) -> "FrameDigest":
        """Rebuild a digest from a validated journal record.

        Raises ``TypeError`` on unexpected fields, which
        :func:`read_journal` converts to a
        :class:`~repro.core.errors.JournalCorruptionError`.
        """
        fields = {k: v for k, v in record.items() if k not in ("kind", "crc")}
        return cls(**fields)


@dataclass(slots=True)
class JournalContents:
    """Everything a valid (possibly torn-tailed) journal contains.

    ``valid_bytes`` is the length of the trusted prefix of the file:
    before appending across a resume, the writer truncates the journal
    to this offset so a torn tail can never merge with a new record.
    ``needs_newline`` marks a final record that parsed but lost its
    terminating newline.
    """

    header: dict
    frames: list[FrameDigest]
    resumes: list[dict]
    end: dict | None
    truncated_tail: bool
    valid_bytes: int = 0
    needs_newline: bool = False

    @property
    def last_frame(self) -> int:
        """Index of the newest journaled frame; -1 for an empty journal."""
        return self.frames[-1].frame if self.frames else -1

    def frames_by_index(self) -> dict[int, FrameDigest]:
        """Frame records keyed by frame index (replays verify against
        these instead of re-appending, so indices never repeat)."""
        return {digest.frame: digest for digest in self.frames}


class JournalWriter:
    """Appends checksummed records to a journal file.

    The writer opens lazily on first append (``mode="x"`` for a fresh
    journal, ``"a"`` to extend one across a resume) and flushes every
    record so a SIGKILL can lose at most the line being written.
    """

    def __init__(
        self,
        path: Path | str,
        *,
        append: bool = False,
        fsync_every_append: bool = False,
    ):
        self.path = Path(path)
        self.append = append
        self.fsync_every_append = fsync_every_append
        self._handle: IO[str] | None = None

    def _file(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a" if self.append else "w", encoding="utf-8")
        return self._handle

    def write_header(self, run_meta: dict) -> None:
        """Append the header record — first line of every journal,
        stamped with :data:`JOURNAL_SCHEMA` plus ``run_meta``."""
        record = {"kind": "header", "schema": JOURNAL_SCHEMA}
        record.update(run_meta)
        self._append(record)

    def write_frame(self, digest: FrameDigest) -> None:
        """Append one committed frame's outcome digest."""
        self._append(digest.to_record())

    def write_resume(self, *, from_frame: int, snapshot_frame: int) -> None:
        """Append a resume marker: replay restarted at ``from_frame``
        from the snapshot taken at ``snapshot_frame``."""
        self._append(
            {"kind": "resume", "from_frame": from_frame, "snapshot_frame": snapshot_frame}
        )

    def write_end(self, summary: dict) -> None:
        """Append the end-of-run record carrying the final summary; a
        journal without one was interrupted."""
        record = {"kind": "end"}
        record.update(summary)
        self._append(record)

    def _append(self, record: dict) -> None:
        handle = self._file()
        handle.write(_checksummed_line(record))
        handle.flush()
        if self.fsync_every_append:
            fsync(handle.fileno())

    def sync(self) -> None:
        """Force the journal to stable storage (fsync)."""
        if self._handle is not None:
            self._handle.flush()
            fsync(self._handle.fileno())

    def close(self) -> None:
        """Flush, fsync and close the file; safe to call twice (and
        called by the context-manager exit)."""
        if self._handle is not None:
            self._handle.flush()
            fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


def _parse_line(line: str, line_no: int, path: Path) -> dict:
    """One complete journal line → its validated record, or raise."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JournalCorruptionError(
            f"{path}: line {line_no} is not valid JSON ({exc})"
        ) from exc
    if not isinstance(record, dict) or "crc" not in record:
        raise JournalCorruptionError(f"{path}: line {line_no} has no checksum field")
    claimed = record.pop("crc")
    actual = zlib.crc32(_canonical(record).encode("utf-8"))
    if claimed != actual:
        raise JournalCorruptionError(
            f"{path}: line {line_no} checksum mismatch "
            f"(stored {claimed}, computed {actual}) — journal is corrupt, refusing"
        )
    if record.get("kind") not in _RECORD_KINDS:
        raise JournalCorruptionError(
            f"{path}: line {line_no} has unknown record kind {record.get('kind')!r}"
        )
    return record


def read_journal(path: Path | str) -> JournalContents:
    """Read and validate a journal, tolerating only a torn final line.

    Raises :class:`~repro.core.errors.JournalCorruptionError` on any
    damaged record that is not the truncated tail, and
    :class:`~repro.core.errors.JournalSchemaError` when the header's
    schema version is unknown.
    """
    path = Path(path)
    raw = path.read_text(encoding="utf-8")
    lines = raw.split("\n")
    # A well-formed journal ends with "\n", so the final split element is
    # empty; anything else is a line torn mid-append.
    torn = lines[-1] != ""
    complete = lines[:-1]
    tail = lines[-1] if torn else None

    records: list[dict] = []
    for line_no, line in enumerate(complete, start=1):
        if not line:
            raise JournalCorruptionError(f"{path}: line {line_no} is empty")
        records.append(_parse_line(line, line_no, path))

    truncated_tail = False
    needs_newline = False
    valid_bytes = len(raw.encode("utf-8"))
    if tail is not None:
        # An unterminated final line is either a complete record whose
        # newline was lost (rare, keep it) or a record torn mid-write
        # (the normal crash signature, drop it with a warning).
        try:
            records.append(_parse_line(tail, len(lines), path))
            needs_newline = True
        except JournalCorruptionError:
            truncated_tail = True
            valid_bytes -= len(tail.encode("utf-8"))
            warnings.warn(
                f"{path}: dropping torn final journal line ({len(tail)} bytes) — "
                "expected after a crash mid-append; recovery resumes from the "
                "previous frame",
                RuntimeWarning,
                stacklevel=2,
            )

    if not records:
        raise JournalCorruptionError(f"{path}: journal has no valid records")
    header = records[0]
    if header.get("kind") != "header":
        raise JournalCorruptionError(f"{path}: first record is not a header")
    schema = header.get("schema")
    if schema != JOURNAL_SCHEMA:
        raise JournalSchemaError(
            f"{path}: journal schema {schema!r} is not the supported "
            f"{JOURNAL_SCHEMA!r}; refusing to replay records whose semantics "
            "this build does not know"
        )

    frames: list[FrameDigest] = []
    resumes: list[dict] = []
    end: dict | None = None
    for record in records[1:]:
        kind = record["kind"]
        if kind == "frame":
            try:
                frames.append(FrameDigest.from_record(record))
            except TypeError as exc:
                raise JournalCorruptionError(
                    f"{path}: frame record has unexpected fields ({exc})"
                ) from exc
        elif kind == "resume":
            resumes.append(record)
        elif kind == "end":
            end = record
        elif kind == "header":
            raise JournalCorruptionError(f"{path}: duplicate header record")
    return JournalContents(
        header=header,
        frames=frames,
        resumes=resumes,
        end=end,
        truncated_tail=truncated_tail,
        valid_bytes=valid_bytes,
        needs_newline=needs_newline,
    )
