"""Resilience layer: frame deadlines, degradation ladder, fault injection.

See DESIGN.md §8.  The package keeps the paper's one-minute frame
contract under load and under faults: budgets bound every expensive
stage, the ladder guarantees some dispatcher answers every frame, and
the fault injector makes the failure paths deterministic and testable.
"""

from repro.core.errors import (
    EnumerationBudgetError,
    FrameBudgetExceededError,
    TransientFaultError,
)
from repro.resilience.budget import FrameBudget, WorkBudget
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultyOracle,
    in_worker_process,
    maybe_crash_worker,
)
from repro.resilience.ladder import ResiliencePolicy, Rung, default_ladder
from repro.resilience.report import (
    DROPPED_RUNG,
    FrameResilienceRecord,
    ResilienceReport,
)

__all__ = [
    "FrameBudget",
    "WorkBudget",
    "FrameBudgetExceededError",
    "TransientFaultError",
    "EnumerationBudgetError",
    "FaultInjector",
    "FaultyOracle",
    "FaultPlan",
    "in_worker_process",
    "maybe_crash_worker",
    "ResiliencePolicy",
    "Rung",
    "default_ladder",
    "ResilienceReport",
    "FrameResilienceRecord",
    "DROPPED_RUNG",
]
