"""Resilience layer: deadlines, faults, durability, and self-verification.

See DESIGN.md §8 and §12.  The package keeps the paper's one-minute
frame contract under load and under faults — budgets bound every
expensive stage, the ladder guarantees some dispatcher answers every
frame, the fault injector makes the failure paths deterministic and
testable — and makes long runs durable and self-checking: the journal
and checkpoint store let a crashed run resume bit-identically, and the
stability auditor re-verifies sampled fast-path frames at runtime.
"""

from repro.core.errors import (
    CheckpointError,
    CheckpointSchemaError,
    EnumerationBudgetError,
    FrameBudgetExceededError,
    JournalCorruptionError,
    JournalError,
    JournalSchemaError,
    ResumeError,
    TransientFaultError,
)
from repro.resilience.auditor import (
    AUDITED_MODES,
    DEFAULT_AUDIT_RATE,
    StabilityAuditor,
    schedule_pairs,
)
from repro.resilience.budget import FrameBudget, WorkBudget, zone_budget_slices
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    DurabilityConfig,
    DurabilityManager,
    resume_simulation,
)
from repro.resilience.faults import (
    CrashPlan,
    FaultInjector,
    FaultPlan,
    FaultyOracle,
    in_worker_process,
    maybe_crash_worker,
)
from repro.resilience.journal import (
    JOURNAL_SCHEMA,
    FrameDigest,
    JournalContents,
    JournalWriter,
    frame_pairs_crc,
    read_journal,
)
from repro.resilience.ladder import ResiliencePolicy, Rung, default_ladder
from repro.resilience.report import (
    DROPPED_RUNG,
    FrameResilienceRecord,
    ResilienceReport,
    StabilityAuditRecord,
    StabilityAuditReport,
)

__all__ = [
    "FrameBudget",
    "WorkBudget",
    "zone_budget_slices",
    "FrameBudgetExceededError",
    "TransientFaultError",
    "EnumerationBudgetError",
    "JournalError",
    "JournalCorruptionError",
    "JournalSchemaError",
    "CheckpointError",
    "CheckpointSchemaError",
    "ResumeError",
    "FaultInjector",
    "FaultyOracle",
    "FaultPlan",
    "CrashPlan",
    "in_worker_process",
    "maybe_crash_worker",
    "ResiliencePolicy",
    "Rung",
    "default_ladder",
    "ResilienceReport",
    "FrameResilienceRecord",
    "DROPPED_RUNG",
    "StabilityAuditRecord",
    "StabilityAuditReport",
    "StabilityAuditor",
    "AUDITED_MODES",
    "DEFAULT_AUDIT_RATE",
    "schedule_pairs",
    "JOURNAL_SCHEMA",
    "FrameDigest",
    "JournalContents",
    "JournalWriter",
    "frame_pairs_crc",
    "read_journal",
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "DurabilityConfig",
    "DurabilityManager",
    "resume_simulation",
]
