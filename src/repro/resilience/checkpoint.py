"""Durable checkpoint/resume: periodic snapshots + journal replay.

The other half of the crash-recovery story (the write-ahead journal is
:mod:`repro.resilience.journal`): every ``checkpoint_every_frames``
frames the engine serializes its *complete* mutable run state — taxi
agents, outcome accumulators, the pending queue, frame statistics,
resilience records, and the fault injector's captured seeded-RNG state
— into an atomically written, checksummed snapshot.  Warm-start and
sharded solver state (``FrameSolveState`` / ``ShardedFrameState``) is
deliberately **not** persisted: the warm paths are proven bit-identical
to the cold solve (DESIGN.md §10–11), so a resumed run simply restarts
them cold and converges on the same matchings, which keeps snapshots
small and the resume path independent of solver internals.

Recovery (:func:`resume_simulation`) loads the newest snapshot that
passes validation, replays the journal's surviving frames, and verifies
every replayed frame digest against the journaled one — the resumed run
is *asserted* bit-identical to the uninterrupted run (summary, outcomes,
assignments), not assumed.  Torn snapshots (a crash mid-write) are
skipped with a warning; schema skew is a hard refusal.

All state crosses the snapshot boundary as JSON.  Python's ``json``
serializes floats via ``repr`` (shortest round-trip), so every float —
coordinates, availability clocks, dissatisfaction scores — is restored
bit-identically, which is what makes the resume equality *bit* equality
rather than approximate.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.errors import (
    CheckpointError,
    CheckpointSchemaError,
    ResumeError,
)
from repro.resilience.journal import (
    FrameDigest,
    JournalContents,
    JournalWriter,
    read_journal,
)

if TYPE_CHECKING:  # avoids a resilience <-> simulation import cycle
    from collections.abc import Sequence

    from repro.core.types import PassengerRequest, Taxi
    from repro.resilience.faults import CrashPlan
    from repro.simulation.engine import SimulationResult, Simulator

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "DurabilityConfig",
    "DurabilityManager",
    "resume_simulation",
]

#: Schema version stamped into every snapshot envelope.  /2 replaced
#: the flat ``telemetry`` dict with the dispatcher-owned ``dispatch``
#: payload (``Dispatcher.state_payload``); /1 snapshots are refused
#: rather than guessed at, per the version-skew policy below.
CHECKPOINT_SCHEMA = "repro-checkpoint/2"

_SNAPSHOT_PREFIX = "snap-"
_JOURNAL_NAME = "journal.jsonl"


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True, slots=True)
class DurabilityConfig:
    """Tuning knobs of the journal/checkpoint subsystem.

    ``checkpoint_every_frames`` trades recovery time (frames replayed
    from the newest snapshot) against snapshot I/O; the journal itself
    is appended every frame regardless.  ``keep`` bounds disk usage —
    older snapshots beyond it are pruned after each successful write
    (at least one always survives).  ``fsync_journal_appends`` upgrades
    the journal from SIGKILL-durable (OS page cache) to power-loss
    durable at a per-frame fsync cost; snapshots are always fsynced
    before their atomic rename.
    """

    directory: Path
    checkpoint_every_frames: int = 120
    keep: int = 3
    fsync_journal_appends: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "directory", Path(self.directory))
        if self.checkpoint_every_frames < 1:
            raise ValueError(
                f"checkpoint_every_frames must be >= 1, got {self.checkpoint_every_frames}"
            )
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")


class CheckpointStore:
    """Atomic, checksummed snapshot files in one directory.

    Writes go to a temporary file, are fsynced, and are renamed into
    place, so a crash can only ever leave a *torn temporary*, never a
    torn snapshot; :meth:`latest_valid` additionally validates checksums
    so even external damage downgrades a snapshot to "skipped with a
    warning" rather than "restored garbage".
    """

    def __init__(self, directory: Path | str, *, keep: int = 3):
        self.directory = Path(directory)
        self.keep = keep

    def _snapshot_path(self, frame: int) -> Path:
        return self.directory / f"{_SNAPSHOT_PREFIX}{frame:08d}.json"

    def snapshot_paths(self) -> list[Path]:
        """All snapshot files, oldest first."""
        if not self.directory.exists():
            return []
        return sorted(self.directory.glob(f"{_SNAPSHOT_PREFIX}*.json"))

    def write(self, frame: int, envelope: dict) -> Path:
        """Atomically persist one snapshot envelope and prune old ones."""
        self.directory.mkdir(parents=True, exist_ok=True)
        body = dict(envelope)
        body["schema"] = CHECKPOINT_SCHEMA
        body["frame"] = frame
        body["crc"] = zlib.crc32(_canonical(body).encode("utf-8"))
        path = self._snapshot_path(frame)
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(_canonical(body))
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
        self._prune()
        return path

    def _prune(self) -> None:
        paths = self.snapshot_paths()
        for stale in paths[: max(0, len(paths) - self.keep)]:
            stale.unlink(missing_ok=True)

    def _load(self, path: Path) -> dict:
        try:
            body = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"{path}: unreadable snapshot ({exc})") from exc
        if not isinstance(body, dict) or "crc" not in body:
            raise CheckpointError(f"{path}: snapshot has no checksum")
        claimed = body.pop("crc")
        actual = zlib.crc32(_canonical(body).encode("utf-8"))
        if claimed != actual:
            raise CheckpointError(
                f"{path}: snapshot checksum mismatch (stored {claimed}, computed {actual})"
            )
        schema = body.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointSchemaError(
                f"{path}: snapshot schema {schema!r} is not the supported "
                f"{CHECKPOINT_SCHEMA!r}; refusing to restore state whose layout "
                "this build does not know"
            )
        return body

    def latest_valid(self) -> dict | None:
        """The newest snapshot that passes validation, or ``None``.

        Torn or checksum-damaged snapshots are skipped with a warning
        (the crash-mid-write case older snapshots exist to absorb);
        schema skew raises — silently skipping it would quietly resume
        from a much older frame.
        """
        for path in reversed(self.snapshot_paths()):
            try:
                return self._load(path)
            except CheckpointSchemaError:
                raise
            except CheckpointError as exc:
                warnings.warn(
                    f"skipping invalid snapshot: {exc}", RuntimeWarning, stacklevel=2
                )
        return None

    def clear(self) -> None:
        """Delete every snapshot file (fresh-run initialization)."""
        for path in self.snapshot_paths():
            path.unlink(missing_ok=True)


@dataclass(slots=True)
class _ResumeContext:
    """Replay bookkeeping carried by the manager during a resumed run."""

    journaled: dict[int, FrameDigest] = field(default_factory=dict)
    last_journaled: int = -1
    snapshot_frame: int = -1
    verified: int = 0


class DurabilityManager:
    """The engine-facing facade over journal + checkpoint store.

    The :class:`~repro.simulation.engine.Simulator` drives it through
    four calls: ``begin_run`` once per run, ``crash_point`` /
    ``commit_frame`` once per frame, and ``finish_run`` at the end.
    ``crash_plan`` (tests and chaos harnesses only) injects SIGKILL at a
    chosen frame and phase — *mid-frame* fires before the frame's
    journal append (the record is lost, the frame replays on resume),
    *boundary* fires after append and checkpoint (the record survives).
    """

    def __init__(
        self,
        config: DurabilityConfig,
        *,
        crash_plan: "CrashPlan | None" = None,
    ):
        self.config = config
        self.crash_plan = crash_plan
        self.store = CheckpointStore(config.directory, keep=config.keep)
        self.journal_path = config.directory / _JOURNAL_NAME
        self._writer: JournalWriter | None = None
        self._resume: _ResumeContext | None = None
        self._run_meta: dict | None = None

    # -- run lifecycle -----------------------------------------------------

    def begin_run(self, run_meta: dict, *, resuming: bool) -> None:
        """Open the journal for a fresh run or validate it for a resume.

        A fresh run replaces any artifacts a previous run left in the
        directory; a resume validates that the workload matches the one
        the journal header describes (same dispatcher, fleet and trace
        sizes) and refuses to splice states of different runs together.
        """
        self._run_meta = dict(run_meta)
        if not resuming:
            self.store.clear()
            self.journal_path.unlink(missing_ok=True)
            self._writer = JournalWriter(
                self.journal_path,
                append=False,
                fsync_every_append=self.config.fsync_journal_appends,
            )
            self._writer.write_header(run_meta)
            self._resume = None
            return
        if self._resume is None:
            raise ResumeError(
                "begin_run(resuming=True) without prepare_resume(); use "
                "resume_simulation() to recover a run"
            )
        header = {
            k: v
            for k, v in self._journal_header.items()
            if k not in ("kind", "schema", "crc")
        }
        if header != run_meta:
            raise ResumeError(
                "resume workload does not match the journaled run: "
                f"journal header {header!r} vs current run {run_meta!r}"
            )

    def prepare_resume(self, journal: JournalContents, snapshot_frame: int) -> None:
        """Arm replay verification against ``journal`` (resume path only)."""
        # Appending after a torn tail must never merge bytes into the
        # damaged line: truncate the file to its trusted prefix first.
        if journal.truncated_tail:
            with self.journal_path.open("rb+") as handle:
                handle.truncate(journal.valid_bytes)
        self._journal_header = journal.header
        self._resume = _ResumeContext(
            journaled=journal.frames_by_index(),
            last_journaled=journal.last_frame,
            snapshot_frame=snapshot_frame,
        )
        self._writer = JournalWriter(
            self.journal_path,
            append=True,
            fsync_every_append=self.config.fsync_journal_appends,
        )
        if journal.needs_newline:
            handle = self._writer._file()
            handle.write("\n")
            handle.flush()
        self._writer.write_resume(
            from_frame=journal.last_frame, snapshot_frame=snapshot_frame
        )

    # -- per-frame ---------------------------------------------------------

    def crash_point(self, frame: int, phase: str) -> None:
        """Chaos hook: die here if the crash plan targets (frame, phase)."""
        if self.crash_plan is not None:
            self.crash_plan.execute(frame, phase)

    def commit_frame(
        self, digest: FrameDigest, state_payload: Callable[[], dict]
    ) -> None:
        """Journal one completed frame; checkpoint and crash-check after.

        On a resumed run, frames the journal already holds are *verified*
        against their journaled digests instead of re-appended; a
        mismatch means the replayed state diverged from the original run
        and raises :class:`~repro.core.errors.ResumeError` rather than
        letting a silently different run masquerade as a recovery.
        """
        writer = self._writer
        if writer is None:
            raise CheckpointError("commit_frame before begin_run")
        replay = self._resume
        if replay is not None and digest.frame <= replay.last_journaled:
            journaled = replay.journaled.get(digest.frame)
            if journaled is None:
                raise ResumeError(
                    f"frame {digest.frame} is below the journal frontier "
                    f"({replay.last_journaled}) but has no journaled digest"
                )
            if journaled.replay_key() != digest.replay_key():
                raise ResumeError(
                    f"replayed frame {digest.frame} diverged from the journal: "
                    f"journaled {journaled.replay_key()} vs replayed "
                    f"{digest.replay_key()}; the recovered state is not "
                    "bit-identical to the original run"
                )
            replay.verified += 1
        else:
            writer.write_frame(digest)
        if (digest.frame + 1) % self.config.checkpoint_every_frames == 0:
            self._write_snapshot(digest.frame, state_payload(), finished=False)
        self.crash_point(digest.frame, "boundary")

    def _write_snapshot(self, frame: int, state: dict, *, finished: bool) -> None:
        # The journal must reach disk before the snapshot that presumes
        # it: a snapshot newer than the journal frontier is unrecoverable.
        writer = self._writer
        if writer is not None:
            writer.sync()
        envelope = {
            "finished": finished,
            "run": self._run_meta or {},
            "state": state,
        }
        self.store.write(frame, envelope)

    # -- run end -----------------------------------------------------------

    def finish_run(self, frame: int, summary: dict, state_payload: Callable[[], dict]) -> None:
        """Seal the journal and leave a final ``finished`` snapshot."""
        writer = self._writer
        if writer is None:
            raise CheckpointError("finish_run before begin_run")
        self._write_snapshot(frame, state_payload(), finished=True)
        writer.write_end(summary)
        writer.close()
        self._writer = None

    @property
    def resuming(self) -> bool:
        """Whether :meth:`prepare_resume` armed replay verification."""
        return self._resume is not None

    @property
    def frames_verified(self) -> int:
        """Replayed frames whose digests matched the journal (resume only)."""
        return self._resume.verified if self._resume is not None else 0

    def has_artifacts(self) -> bool:
        """Whether a journal or any snapshot exists on disk — the test
        :func:`resume_simulation` uses to tell "resume" from "nothing
        to resume"."""
        return self.journal_path.exists() or bool(self.store.snapshot_paths())


def resume_simulation(
    simulator: "Simulator",
    taxis: "Sequence[Taxi]",
    requests: "Sequence[PassengerRequest]",
    *,
    fresh_ok: bool = False,
) -> "SimulationResult":
    """Recover an interrupted run from its durability directory.

    Loads the newest valid snapshot, restores the engine state it
    carries, replays the remaining frames while verifying each against
    the journaled digests, and returns the completed
    :class:`~repro.simulation.engine.SimulationResult` — bit-identical
    (summary, outcomes, assignments) to the run that was interrupted.

    ``taxis`` and ``requests`` must be the same workload the interrupted
    run was given (traces are seeded, so regenerating them is exact);
    :class:`~repro.core.errors.ResumeError` is raised when they do not
    match the journal header.  With ``fresh_ok=True`` an empty directory
    falls back to a normal run instead of raising, which is what lets a
    ``--resume`` flag double as "start if there is nothing to resume".

    Every other refusal is a typed hard error, never a silent restart:
    :class:`~repro.core.errors.ResumeError` when no manager is
    installed, there is nothing to resume (without ``fresh_ok``),
    snapshots exist without a journal, the journal already records a
    completed run, the snapshot is ahead of the journal frontier, or a
    replayed frame's digest diverges;
    :class:`~repro.core.errors.JournalCorruptionError` /
    :class:`~repro.core.errors.JournalSchemaError` propagate unchanged
    from :func:`~repro.resilience.journal.read_journal`.
    """
    manager = simulator.durability
    if manager is None:
        raise ResumeError("simulator has no DurabilityManager installed")
    if not manager.journal_path.exists():
        if manager.store.snapshot_paths():
            raise ResumeError(
                f"{manager.config.directory}: snapshots exist but the journal is "
                "missing; refusing to resume without replay verification"
            )
        if fresh_ok:
            return simulator.run(taxis, requests)
        raise ResumeError(f"{manager.config.directory}: nothing to resume")

    journal = read_journal(manager.journal_path)
    if journal.end is not None:
        raise ResumeError(
            f"{manager.journal_path}: journal records a completed run; "
            "nothing to resume (start a fresh run to recompute it)"
        )
    snapshot = manager.store.latest_valid()
    state: dict | None = None
    snapshot_frame = -1
    if snapshot is not None:
        snapshot_frame = int(snapshot["frame"])
        if snapshot_frame > journal.last_frame:
            raise ResumeError(
                f"snapshot frame {snapshot_frame} is ahead of the journal "
                f"frontier {journal.last_frame}; the journal lost more than a "
                "torn tail — refusing to resume"
            )
        state = snapshot["state"]

    policy = simulator.resilience
    if (
        policy is not None
        and policy.fault_injector is not None
        and getattr(simulator.dispatcher, "warm_start", False)
    ):
        # Warm frames make fewer oracle calls than cold ones, so with an
        # armed fault injector the post-resume replay (which restarts
        # warm state cold) would consume a different RNG stream than the
        # original run — replay verification would be vacuous or wrong.
        raise ResumeError(
            "resume with an armed fault injector and a warm-start dispatcher "
            "is unsupported: the replayed fault schedule would diverge"
        )

    manager.prepare_resume(journal, snapshot_frame)
    return simulator.run(taxis, requests, _resume=state)
