"""Deterministic fault injection for chaos testing the dispatch loop.

A :class:`FaultInjector` is a seeded source of three fault species a
production O2O broker actually sees:

* **latency spikes** — a distance-oracle call stalls (a slow map
  service, a cold cache).  Injected as *virtual* time on the injector's
  deterministic clock, so chaos tests reproduce bit-for-bit without
  real sleeping; frame budgets driven by :meth:`FaultInjector.clock`
  observe the spike and trigger the degradation ladder.
* **transient oracle errors** — a call fails but a retry may succeed.
  Raised as :class:`~repro.core.errors.TransientFaultError` from the
  wrapped oracle.
* **worker crashes** — a process-pool worker dies mid-cell (OOM killer,
  segfault).  Expressed through :class:`FaultPlan.crash_algorithms` and
  executed by :func:`maybe_crash_worker` inside pool workers only, so
  the experiment runners' ``BrokenProcessPool`` recovery path is
  exercised for real.

The injector is **armed** by default; the simulation engine disarms it
outside dispatch attempts so post-dispatch accounting (assignment
metrics, revenue) is never poisoned — real platforms put the retry
boundary around the decision stage, not the bookkeeping.

:class:`FaultPlan` is the picklable description shipped to pool
workers; each experiment cell derives its own injector from the plan,
the cell key, and the attempt number, so retries see a fresh fault
schedule and serial re-runs reproduce parallel runs exactly.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import zlib
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.errors import TransientFaultError
from repro.geometry.distance import DistanceOracle
from repro.geometry.point import Point

__all__ = [
    "CrashPlan",
    "FaultInjector",
    "FaultyOracle",
    "FaultPlan",
    "in_worker_process",
    "maybe_crash_worker",
]


class FaultInjector:
    """Seeded, deterministic fault source shared by one run's oracle calls.

    ``fail_first_calls`` deterministically fails the first N armed calls
    regardless of rates — the hook cell-level retry tests use to make
    attempt 0 fail and attempt 1 succeed.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        latency_rate: float = 0.0,
        latency_s: float = 5.0,
        error_rate: float = 0.0,
        per_call_cost_s: float = 0.0,
        fail_first_calls: int = 0,
    ):
        for name, rate in (("latency_rate", latency_rate), ("error_rate", error_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.latency_rate = latency_rate
        self.latency_s = latency_s
        self.error_rate = error_rate
        self.per_call_cost_s = per_call_cost_s
        self.fail_first_calls = fail_first_calls
        self.armed = True
        self.calls = 0
        self.latency_spikes = 0
        self.errors_raised = 0
        self._virtual_s = 0.0
        self._rng = random.Random(seed)

    # -- virtual clock -----------------------------------------------------

    def clock(self) -> float:
        """Deterministic virtual seconds elapsed; drives frame budgets."""
        return self._virtual_s

    def advance(self, seconds: float) -> None:
        """Manually advance the virtual clock (tests, custom harnesses)."""
        self._virtual_s += seconds

    # -- arming ------------------------------------------------------------

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    # -- fault decisions ---------------------------------------------------

    def before_call(self) -> None:
        """One oracle call is about to run: charge time, maybe fault.

        Disarmed calls still pay the per-call base cost (the oracle does
        run) but never spike or fail, and do not consume the RNG stream,
        so the fault schedule depends only on the armed call sequence.
        """
        self.calls += 1
        self._virtual_s += self.per_call_cost_s
        if not self.armed:
            return
        if self.errors_raised < self.fail_first_calls:
            self.errors_raised += 1
            raise TransientFaultError(
                f"injected deterministic fault on armed call {self.calls}"
            )
        draw = self._rng.random()
        if draw < self.error_rate:
            self.errors_raised += 1
            raise TransientFaultError(f"injected transient oracle error (call {self.calls})")
        if draw < self.error_rate + self.latency_rate:
            self.latency_spikes += 1
            self._virtual_s += self.latency_s

    def wrap(self, oracle: DistanceOracle) -> "FaultyOracle":
        """The distance oracle with this injector in front of every call."""
        return FaultyOracle(oracle, self)

    # -- checkpoint support --------------------------------------------------

    def state_payload(self) -> dict:
        """JSON-serializable capture of the injector's full mutable state.

        ``random.Random.getstate()`` is a nested tuple of ints; it round-
        trips through JSON as lists and is converted back on restore, so
        a resumed run continues the *same* fault schedule the crashed run
        would have produced.
        """
        version, internal, gauss_next = self._rng.getstate()
        return {
            "seed": self.seed,
            "armed": self.armed,
            "calls": self.calls,
            "latency_spikes": self.latency_spikes,
            "errors_raised": self.errors_raised,
            "virtual_s": self._virtual_s,
            "rng": [version, list(internal), gauss_next],
        }

    def restore_state(self, payload: dict) -> None:
        """Restore state captured by :meth:`state_payload`."""
        if payload["seed"] != self.seed:
            raise ValueError(
                f"injector seed mismatch: snapshot has {payload['seed']}, "
                f"this injector was built with {self.seed}"
            )
        self.armed = payload["armed"]
        self.calls = payload["calls"]
        self.latency_spikes = payload["latency_spikes"]
        self.errors_raised = payload["errors_raised"]
        self._virtual_s = payload["virtual_s"]
        version, internal, gauss_next = payload["rng"]
        self._rng.setstate((version, tuple(internal), gauss_next))

    def state_fingerprint(self) -> str:
        """Compact digest of the injector state for journal records."""
        version, internal, gauss_next = self._rng.getstate()
        crc = zlib.crc32(repr((version, internal, gauss_next)).encode("utf-8"))
        return f"{self.calls}:{self.errors_raised}:{self.latency_spikes}:{crc:08x}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(seed={self.seed}, calls={self.calls}, "
            f"spikes={self.latency_spikes}, errors={self.errors_raised})"
        )


class FaultyOracle:
    """A distance oracle wrapper that consults a :class:`FaultInjector`.

    Batch calls (``pairwise``/``distances``/``paired``) count as one
    fault opportunity each, mirroring one RPC to a map service; the
    ``batch_exact`` contract passes through unchanged, so with the
    injector disarmed the wrapper is observationally identical to its
    base oracle.
    """

    def __init__(self, base: DistanceOracle, injector: FaultInjector):
        self._base = base
        self._injector = injector

    @property
    def base(self) -> DistanceOracle:
        return self._base

    @property
    def injector(self) -> FaultInjector:
        return self._injector

    @property
    def batch_exact(self) -> bool:
        return bool(getattr(self._base, "batch_exact", False))

    def distance(self, a: Point, b: Point) -> float:
        self._injector.before_call()
        return self._base.distance(a, b)

    def pairwise(self, sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
        from repro.geometry.batch import oracle_pairwise

        self._injector.before_call()
        return oracle_pairwise(self._base, sources=sources, targets=targets)

    def distances(self, origin: Point, targets: Sequence[Point]) -> np.ndarray:
        from repro.geometry.batch import oracle_distances

        self._injector.before_call()
        return oracle_distances(self._base, origin, targets=targets)

    def paired(self, sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
        from repro.geometry.batch import oracle_paired

        self._injector.before_call()
        return oracle_paired(self._base, sources=sources, targets=targets)

    def __getattr__(self, name: str) -> object:
        # Oracles expose extras (e.g. RoadNetwork.snap); pass them through.
        return getattr(self._base, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyOracle({self._base!r})"


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Picklable fault schedule shipped into experiment cells and workers.

    ``crash_algorithms`` names cells whose *worker-process* execution
    dies via ``os._exit`` (only when actually inside a pool worker, so
    the serial recovery re-run in the parent completes cleanly).
    ``fail_attempts`` makes the first N attempts of every cell raise a
    deterministic :class:`~repro.core.errors.TransientFaultError` on
    their first armed oracle call, exercising per-cell retry/backoff.
    """

    seed: int = 0
    latency_rate: float = 0.0
    latency_s: float = 5.0
    error_rate: float = 0.0
    per_call_cost_s: float = 0.0
    fail_attempts: int = 0
    crash_algorithms: tuple[str, ...] = ()

    def build_injector(self, cell_key: str, attempt: int = 0) -> FaultInjector:
        """A fresh injector whose stream is stable in (plan, cell, attempt)."""
        derived = zlib.crc32(f"{self.seed}:{cell_key}:{attempt}".encode())
        return FaultInjector(
            seed=derived,
            latency_rate=self.latency_rate,
            latency_s=self.latency_s,
            error_rate=self.error_rate,
            per_call_cost_s=self.per_call_cost_s,
            fail_first_calls=1 if attempt < self.fail_attempts else 0,
        )

    def wrap_oracle(
        self, oracle: DistanceOracle, cell_key: str, attempt: int = 0
    ) -> tuple[DistanceOracle, FaultInjector]:
        injector = self.build_injector(cell_key, attempt)
        return injector.wrap(oracle), injector


@dataclass(frozen=True, slots=True)
class CrashPlan:
    """SIGKILL the process at a chosen frame and phase (chaos tests only).

    ``phase`` selects the crash point relative to durability writes:
    ``"mid-frame"`` fires *before* the frame's journal append (the frame
    is lost and must replay on resume), ``"boundary"`` fires *after* the
    append and any checkpoint (the frame survives in the journal).
    SIGKILL — not an exception — because the recovery contract under
    test is "no Python cleanup ran at all", exactly what the OOM killer
    or a power-cycled host delivers.
    """

    frame: int
    phase: str = "boundary"

    _PHASES = ("boundary", "mid-frame")

    def __post_init__(self) -> None:
        if self.phase not in self._PHASES:
            raise ValueError(f"phase must be one of {self._PHASES}, got {self.phase!r}")
        if self.frame < 0:
            raise ValueError(f"frame must be >= 0, got {self.frame}")

    def execute(self, frame: int, phase: str) -> None:
        """Die here if this is the planned (frame, phase); otherwise no-op."""
        if frame == self.frame and phase == self.phase:
            os.kill(os.getpid(), signal.SIGKILL)


def in_worker_process() -> bool:
    """Whether this process is a multiprocessing worker (has a parent)."""
    return multiprocessing.parent_process() is not None


def maybe_crash_worker(plan: FaultPlan | None, cell_key: str) -> None:
    """Die abruptly (as the OOM killer would) if the plan targets this cell.

    Only fires inside pool workers: the serial fallback re-run of the
    same cell in the parent process proceeds normally, which is exactly
    the recovery contract the runners promise.
    """
    if plan is not None and cell_key in plan.crash_algorithms and in_worker_process():
        os._exit(3)
