"""Per-frame memo of batched distance work shared across a dispatch frame.

Every dispatcher in the evaluation opens its frame the same way: a
taxi-to-pickup distance matrix (preference tables, Hungarian cost
matrices, nearest-taxi queries) plus per-request trip distances (taxi
scores, revenue accounting).  Without a cache each consumer recomputes
those matrices from the oracle; with one, the engine computes each
matrix once per frame and every consumer reads the same array.

Ownership and invalidation
--------------------------
The :class:`~repro.simulation.engine.Simulator` owns one cache per run
and hands it to the dispatcher through the ``frame_cache`` attribute on
:class:`~repro.dispatch.base.Dispatcher`.  At every frame boundary the
engine calls :meth:`FrameDistanceCache.begin_frame`, which drops all
**taxi-dependent** matrices — taxis move between frames, so anything
keyed on taxi positions is stale the moment the frame ends.  Purely
**request-keyed** values (trip distances, pickup-to-pickup gaps) are
immutable facts about frozen requests and persist for the life of the
run; queued requests carry them across frames for free.

Exactness
---------
Every cached value is computed with ``exact=True`` batch kernels, which
fall back to scalar ``distance`` loops on oracles that do not honour
the exactness contract (see :mod:`repro.geometry.batch`).  A cache hit
is therefore bit-identical to the scalar oracle call it replaces, so
threading the cache through a dispatcher can never change its output —
only how fast it is produced.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import islice

import numpy as np

from repro.core.types import PassengerRequest, Taxi
from repro.geometry.batch import oracle_paired, oracle_pairwise
from repro.geometry.distance import DistanceOracle

__all__ = ["FrameDistanceCache"]


#: Default ceiling on memoized trip distances.  Generous for any city-day
#: queue (tens of thousands of live requests) while bounding month-scale
#: soak runs whose drivers never retire requests promptly.
DEFAULT_TRIP_CAPACITY = 200_000


class FrameDistanceCache:
    """One frame's batched distance matrices, computed once, read many."""

    def __init__(self, oracle: DistanceOracle, *, trip_capacity: int = DEFAULT_TRIP_CAPACITY):
        if trip_capacity < 1:
            raise ValueError(f"trip_capacity must be positive, got {trip_capacity}")
        self.oracle = oracle
        self.trip_capacity = int(trip_capacity)
        # taxi-dependent: cleared every begin_frame()
        self._pickup: dict[tuple[tuple[int, ...], tuple[int, ...]], np.ndarray] = {}
        # request-keyed: persist while their request is live (see
        # retire_requests); the engine retires served/expired ids so the
        # memos stay proportional to the queue, not the whole trace
        self._gap: dict[tuple[int, ...], np.ndarray] = {}
        self._trip_km: dict[int, float] = {}
        self.frames = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _enforce_trip_cap(self) -> None:
        """Evict oldest-inserted trip memos beyond ``trip_capacity``.

        Insertion order approximates request arrival order, so FIFO
        eviction drops the longest-queued entries — the ones most likely
        to expire next.  Evicting a *live* request's trip is safe: the
        next read recomputes the same exact-kernel value and re-memoizes
        it.  This is the backstop for drivers that never call
        :meth:`retire_requests` (long soaks); with a well-behaved engine
        the memo stays queue-sized and the cap never engages.
        """
        trips = self._trip_km
        overflow = len(trips) - self.trip_capacity
        if overflow > 0:
            for rid in list(islice(iter(trips), overflow)):
                del trips[rid]
            self.evictions += overflow

    def begin_frame(self) -> None:
        """Start a new frame: drop everything keyed on taxi positions."""
        self.frames += 1
        self._pickup.clear()

    def retire_requests(self, request_ids: Iterable[int]) -> None:
        """Evict request-keyed memos for requests that left the system.

        Served and expired requests can never reappear in a frame, so
        their trip distances and any gap matrix mentioning them are dead
        weight; the engine calls this as requests resolve, which bounds
        the request-keyed memos by the live queue instead of letting
        them grow with the whole trace.
        """
        trips = self._trip_km
        # Membership tests run against the retired ids (a frame's worth),
        # never by scanning the memo itself (queue-sized or larger).
        dead_trips = [rid for rid in request_ids if rid in trips]
        for rid in dead_trips:
            del trips[rid]
        self.evictions += len(dead_trips)
        if self._gap and dead_trips:
            retired = set(dead_trips)
            dead_keys = [key for key in self._gap if retired.intersection(key)]
            for key in dead_keys:
                del self._gap[key]
            self.evictions += len(dead_keys)

    def stats(self) -> dict[str, float | int]:
        """Occupancy and traffic counters, for run telemetry."""
        return {
            "cache_frames": self.frames,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_trip_capacity": self.trip_capacity,
            "cache_trip_entries": len(self._trip_km),
            "cache_gap_entries": len(self._gap),
        }

    # -- taxi-dependent ----------------------------------------------------

    def pickup_matrix(
        self, taxis: Sequence[Taxi], requests: Sequence[PassengerRequest]
    ) -> np.ndarray:
        """``D(t_i, r_j^s)`` as a read-only ``(len(taxis), len(requests))``
        matrix (taxi-major, the kernels' contiguous layout).

        Keyed by the id order of both sides, so callers that sort their
        inputs differently within one frame each get a correctly ordered
        matrix; identical orders share one array.
        """
        key = (
            tuple(t.taxi_id for t in taxis),
            tuple(r.request_id for r in requests),
        )
        cached = self._pickup.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        matrix = oracle_pairwise(
            self.oracle,
            sources=[t.location for t in taxis],
            targets=[r.pickup for r in requests],
            exact=True,
        )
        matrix.setflags(write=False)
        self._pickup[key] = matrix
        return matrix

    # -- request-keyed (persist across frames) -----------------------------

    def pickup_gap_matrix(self, requests: Sequence[PassengerRequest]) -> np.ndarray:
        """``D(r_a^s, r_b^s)`` for all request pairs, read-only, in the
        given request order; reused verbatim when the same id sequence
        recurs (queued requests waiting across frames)."""
        key = tuple(r.request_id for r in requests)
        cached = self._gap.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        pickups = [r.pickup for r in requests]
        matrix = oracle_pairwise(self.oracle, sources=pickups, targets=pickups, exact=True)
        matrix.setflags(write=False)
        # Gap matrices for *different* queue snapshots mostly overlap but
        # are not views of each other; keep only the latest per length to
        # bound memory on long runs.
        if len(self._gap) > 64:
            self._gap.clear()
        self._gap[key] = matrix
        return matrix

    def trip_km(self, requests: Sequence[PassengerRequest]) -> np.ndarray:
        """``D(r_j^s, r_j^d)`` per request, in the given order.

        Trip distances are memoized by request id for the life of the
        cache, so a request that waits in the queue for many frames is
        measured exactly once.
        """
        trips = self._trip_km
        missing = [r for r in requests if r.request_id not in trips]
        if missing:
            self.misses += 1
            distances = oracle_paired(
                self.oracle,
                sources=[r.pickup for r in missing],
                targets=[r.dropoff for r in missing],
                exact=True,
            )
            for request, km in zip(missing, distances.tolist()):
                trips[request.request_id] = km
        else:
            self.hits += 1
        # Build the result before enforcing the cap: a single batch
        # larger than the capacity still reads back every value it just
        # measured, and only then sheds the overflow.
        result = np.array([trips[r.request_id] for r in requests], dtype=np.float64)
        if missing:
            self._enforce_trip_cap()
        return result

    def prime_trip_km(
        self, request_ids: Sequence[int] | np.ndarray, km: Sequence[float] | np.ndarray
    ) -> None:
        """Seed the trip memo with values computed elsewhere.

        The warm frame solver computes new requests' trip distances with
        the same exact kernels this cache uses; priming them here keeps
        the engine's per-assignment :meth:`trip_distance` reads hitting
        the memo on warm frames exactly as they do on cold ones.
        """
        rid_list = request_ids.tolist() if isinstance(request_ids, np.ndarray) else [
            int(rid) for rid in request_ids
        ]
        km_list = km.tolist() if isinstance(km, np.ndarray) else [float(value) for value in km]
        trips = self._trip_km
        for rid, value in zip(rid_list, km_list):
            trips[rid] = value
        self._enforce_trip_cap()

    def trip_distance(self, request: PassengerRequest) -> float:
        """Single-request trip distance through the same memo."""
        km = self._trip_km.get(request.request_id)
        if km is None:
            km = float(
                oracle_paired(
                    self.oracle,
                    sources=[request.pickup],
                    targets=[request.dropoff],
                    exact=True,
                )[0]
            )
            self._trip_km[request.request_id] = km
            self.misses += 1
            if len(self._trip_km) > self.trip_capacity:
                del self._trip_km[next(iter(self._trip_km))]
                self.evictions += 1
        else:
            self.hits += 1
        return km
