"""Idle-taxi repositioning policies.

The paper's model leaves idle taxis parked at their last dropoff.  Real
fleets cruise back toward demand, and our saturation analysis (see
DESIGN.md §4) showed the parked-at-dropoff assumption is what lets
deadhead legs dominate ride cost when trips radiate out of the demand
core.  A :class:`RepositioningPolicy` lets experiments quantify that
effect: each frame, every idle taxi may drive up to one frame's worth
of distance toward a policy-chosen target.

Policies:

* :class:`NoRepositioning` — the paper's behaviour (default).
* :class:`DriftToAnchor` — cruise toward a fixed point (the city
  centre), the simplest demand-seeking heuristic.
* :class:`DriftToRecentDemand` — cruise toward the centroid of the
  recent pickups the policy has observed, adapting to moving demand.
"""

from __future__ import annotations

import abc
import math
from collections import deque
from collections.abc import Sequence

from repro.core.types import PassengerRequest
from repro.geometry.point import Point

__all__ = ["RepositioningPolicy", "NoRepositioning", "DriftToAnchor", "DriftToRecentDemand"]


class RepositioningPolicy(abc.ABC):
    """Chooses where an idle taxi should drift during one frame."""

    @abc.abstractmethod
    def target_for(self, taxi_id: int, location: Point) -> Point | None:
        """The point to move toward, or ``None`` to stay parked."""

    def observe_requests(self, requests: Sequence[PassengerRequest]) -> None:
        """Called once per frame with the newly arrived requests."""

    def state_payload(self) -> dict | None:
        """JSON-serializable cross-frame state for checkpointing.

        ``None`` (the default) means the policy is stateless and a
        resumed run can use it as constructed.
        """
        return None

    def restore_state(self, payload: dict) -> None:
        """Restore state captured by :meth:`state_payload` (no-op default)."""

    @staticmethod
    def step_toward(location: Point, target: Point, max_distance_km: float) -> Point:
        """The position after driving ``max_distance_km`` toward ``target``."""
        gap = location.distance_to(target)
        if gap <= max_distance_km:  # includes gap == 0: already there
            return target
        fraction = max_distance_km / gap
        return Point(
            location.x + (target.x - location.x) * fraction,
            location.y + (target.y - location.y) * fraction,
        )


class NoRepositioning(RepositioningPolicy):
    """Idle taxis stay where their last dropoff left them (the paper)."""

    def target_for(self, taxi_id: int, location: Point) -> Point | None:
        return None


class DriftToAnchor(RepositioningPolicy):
    """Cruise toward a fixed anchor, stopping within ``deadband_km``."""

    def __init__(self, anchor: Point, deadband_km: float = 0.0):
        if deadband_km < 0.0:
            raise ValueError(f"deadband must be non-negative, got {deadband_km}")
        self.anchor = anchor
        self.deadband_km = deadband_km

    def target_for(self, taxi_id: int, location: Point) -> Point | None:
        if location.distance_to(self.anchor) <= self.deadband_km:
            return None
        return self.anchor


class DriftToRecentDemand(RepositioningPolicy):
    """Cruise toward the centroid of the last ``window`` pickups."""

    def __init__(self, window: int = 50, deadband_km: float = 0.0, fallback: Point | None = None):
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        if deadband_km < 0.0:
            raise ValueError(f"deadband must be non-negative, got {deadband_km}")
        self.window = window
        self.deadband_km = deadband_km
        self.fallback = fallback
        self._recent: deque[Point] = deque(maxlen=window)

    def observe_requests(self, requests: Sequence[PassengerRequest]) -> None:
        for request in requests:
            self._recent.append(request.pickup)

    def state_payload(self) -> dict | None:
        return {"recent": [[p.x, p.y] for p in self._recent]}

    def restore_state(self, payload: dict) -> None:
        self._recent = deque(
            (Point(x, y) for x, y in payload["recent"]), maxlen=self.window
        )

    @property
    def centroid(self) -> Point | None:
        if not self._recent:
            return self.fallback
        x = sum(p.x for p in self._recent) / len(self._recent)
        y = sum(p.y for p in self._recent) / len(self._recent)
        return Point(x, y)

    def target_for(self, taxi_id: int, location: Point) -> Point | None:
        target = self.centroid
        if target is None:
            return None
        if location.distance_to(target) <= self.deadband_km:
            return None
        return target
