"""Event records produced by the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RequestOutcome", "AssignmentRecord", "TaxiStats", "FrameStats"]


@dataclass(slots=True)
class RequestOutcome:
    """Lifecycle of one passenger request through the simulation.

    ``dispatch_time_s`` is when a taxi was *assigned* (frame boundary);
    the paper's dispatch delay is ``dispatch_time_s − request_time_s``.
    ``None`` timestamps mean the event never happened (request abandoned
    or simulation ended first).
    """

    request_id: int
    request_time_s: float
    dispatch_time_s: float | None = None
    pickup_time_s: float | None = None
    dropoff_time_s: float | None = None
    passenger_dissatisfaction: float | None = None
    group_size: int = 0
    taxi_id: int | None = None
    abandoned: bool = False

    @property
    def served(self) -> bool:
        return self.dispatch_time_s is not None

    @property
    def dispatch_delay_s(self) -> float | None:
        if self.dispatch_time_s is None:
            return None
        return self.dispatch_time_s - self.request_time_s

    @property
    def dispatch_delay_min(self) -> float | None:
        delay = self.dispatch_delay_s
        return None if delay is None else delay / 60.0

    @property
    def wait_time_s(self) -> float | None:
        """Request to physical pickup, the passenger's full wait."""
        if self.pickup_time_s is None:
            return None
        return self.pickup_time_s - self.request_time_s


@dataclass(frozen=True, slots=True)
class AssignmentRecord:
    """One taxi dispatch: the driver-side metrics of an assignment."""

    frame_time_s: float
    taxi_id: int
    request_ids: tuple[int, ...]
    taxi_dissatisfaction: float
    total_drive_km: float
    revenue_km: float

    @property
    def group_size(self) -> int:
        return len(self.request_ids)


@dataclass(frozen=True, slots=True)
class TaxiStats:
    """Per-taxi totals over one simulation — the driver's day.

    ``revenue_km`` is the fare-proportional income (sum of served trip
    distances); ``driven_km`` includes deadheading and repositioning, so
    ``revenue_km / driven_km`` is the driver's paid-distance efficiency.
    """

    taxi_id: int
    driven_km: float
    rides: int
    requests_served: int
    revenue_km: float

    @property
    def paid_ratio(self) -> float:
        """Fraction of driven distance that earned a fare."""
        return self.revenue_km / self.driven_km if self.driven_km > 0 else 0.0


@dataclass(frozen=True, slots=True)
class FrameStats:
    """One dispatch frame's system state, for load diagnostics.

    The queue length / idle count time series is what reveals whether a
    workload is running at the paper's light-load operating point or in
    a saturation regime where delays are patience-bound.

    ``dispatch_ms`` is the wall-clock time the dispatcher spent on this
    frame's batch (0.0 when the frame had nothing to dispatch); the
    per-frame series is how the frame-table speedups are measured on
    real workloads rather than microbenchmarks.
    """

    time_s: float
    queue_length: int
    idle_taxis: int
    dispatched_requests: int
    dispatched_taxis: int
    abandoned: int
    dispatch_ms: float = 0.0
