"""The discrete-time, frame-batched dispatch simulator.

Exactly the paper's setup (Section III-A / VI-A): time is cut into
frames (one minute by default); at each frame boundary the dispatcher
sees the currently idle taxis and all pending requests and returns a
schedule; dispatched taxis drive their plan at constant speed and
return to the idle pool when the last dropoff completes.  Requests not
dispatched remain queued for later frames ("passengers will wait for
nearby busy taxis") until their patience expires.

The engine is deterministic given its inputs; all randomness lives in
the trace generators.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.core.config import SimulationConfig
from repro.core.errors import (
    EnumerationBudgetError,
    FrameBudgetExceededError,
    ReproError,
    SimulationError,
    TransientFaultError,
)
from repro.core.types import DispatchSchedule, PassengerRequest, Taxi
from repro.dispatch.base import Dispatcher, PackedSingleSchedule
from repro.dispatch.scoring import assignment_metrics
from repro.geometry.distance import DistanceOracle
from repro.geometry.point import Point
from repro.resilience.auditor import StabilityAuditor
from repro.resilience.checkpoint import DurabilityManager
from repro.resilience.journal import FrameDigest, frame_pairs_crc
from repro.resilience.ladder import ResiliencePolicy, Rung
from repro.resilience.report import (
    DROPPED_RUNG,
    FrameResilienceRecord,
    ResilienceReport,
    StabilityAuditRecord,
    StabilityAuditReport,
)
from repro.simulation.events import AssignmentRecord, FrameStats, RequestOutcome, TaxiStats
from repro.simulation.frame_cache import FrameDistanceCache
from repro.simulation.repositioning import RepositioningPolicy
from repro.simulation.taxi_state import TaxiAgent

__all__ = ["Simulator", "SimulationResult"]


@dataclass(slots=True)
class SimulationResult:
    """Everything a simulation produced, ready for analysis."""

    dispatcher_name: str
    outcomes: list[RequestOutcome]
    assignments: list[AssignmentRecord]
    frames_run: int
    final_time_s: float
    taxi_stats: dict[int, TaxiStats] = field(default_factory=dict)
    frame_stats: list[FrameStats] = field(default_factory=list)
    frame_length_s: float = 60.0
    #: Per-frame degradation-ladder accounting; ``None`` unless the run
    #: had a :class:`~repro.resilience.ladder.ResiliencePolicy` installed.
    resilience: ResilienceReport | None = None
    #: Run-level counters gathered from the dispatcher
    #: (:meth:`~repro.dispatch.base.Dispatcher.run_telemetry` — e.g.
    #: warm-start frame counts) and the frame distance cache; merged
    #: into :meth:`perf_stats`.
    dispatch_telemetry: dict[str, float | int] = field(default_factory=dict)
    #: Sampled stability re-verification records; ``None`` unless the run
    #: had a :class:`~repro.resilience.auditor.StabilityAuditor` installed.
    stability_audit: StabilityAuditReport | None = None

    # -- request-side views ------------------------------------------------

    @property
    def served(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if o.served]

    @property
    def unserved(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if not o.served]

    @property
    def service_rate(self) -> float:
        return len(self.served) / len(self.outcomes) if self.outcomes else 0.0

    def dispatch_delays_min(self) -> list[float]:
        return [o.dispatch_delay_min for o in self.outcomes if o.dispatch_delay_min is not None]

    def passenger_dissatisfactions(self) -> list[float]:
        return [
            o.passenger_dissatisfaction
            for o in self.outcomes
            if o.passenger_dissatisfaction is not None
        ]

    # -- taxi-side views ---------------------------------------------------

    def taxi_dissatisfactions(self) -> list[float]:
        return [a.taxi_dissatisfaction for a in self.assignments]

    @property
    def shared_ride_fraction(self) -> float:
        if not self.assignments:
            return 0.0
        shared = sum(1 for a in self.assignments if a.group_size > 1)
        return shared / len(self.assignments)

    # -- performance views -------------------------------------------------

    def perf_stats(self) -> dict[str, float]:
        """Wall-clock dispatcher cost over the run, from the per-frame
        ``FrameStats.dispatch_ms`` series.

        ``active_frames`` counts frames where the dispatcher actually
        ran (idle taxis and queued requests both present); means and
        percentiles are reported over active frames, since a lightly
        loaded trace has many trivial frames that dilute them.

        ``frames_over_budget`` counts frames whose dispatch exceeded the
        frame length itself (``frame_length_s``, one minute by default):
        a dispatcher that blows this budget cannot keep up with real
        time, the paper's Fig. 8 criterion.
        """
        samples = [f.dispatch_ms for f in self.frame_stats]
        active = sorted(f.dispatch_ms for f in self.frame_stats if f.dispatch_ms > 0.0)
        total = sum(samples)
        budget_ms = self.frame_length_s * 1e3
        stats = {
            "frames": float(len(samples)),
            "active_frames": float(len(active)),
            "total_dispatch_ms": total,
            "mean_dispatch_ms": total / len(samples) if samples else 0.0,
            "mean_active_dispatch_ms": sum(active) / len(active) if active else 0.0,
            "p50_dispatch_ms": _percentile(active, 0.50),
            "p95_dispatch_ms": _percentile(active, 0.95),
            "max_dispatch_ms": max(samples, default=0.0),
            "frames_over_budget": float(sum(1 for ms in samples if ms > budget_ms)),
        }
        for key, value in self.dispatch_telemetry.items():
            stats[key] = float(value)
        warm = self.dispatch_telemetry.get("warm_frames", 0)
        cold = self.dispatch_telemetry.get("cold_frames", 0)
        if warm or cold:
            stats["warm_hit_rate"] = float(warm) / float(warm + cold)
        scored = self.dispatch_telemetry.get("pairs_scored_warm", 0)
        full = self.dispatch_telemetry.get("full_pairs_warm", 0)
        if full:
            stats["warm_rebuild_fraction"] = float(scored) / float(full)
        decomposed = self.dispatch_telemetry.get("shard_decomposed_frames", 0)
        if decomposed:
            stats["shard_count_mean"] = float(
                self.dispatch_telemetry.get("shard_count", 0)
            ) / float(decomposed)
        entities = self.dispatch_telemetry.get("frame_entities", 0)
        if entities:
            stats["largest_shard_fraction"] = float(
                self.dispatch_telemetry.get("largest_shard_entities", 0)
            ) / float(entities)
        epochs = self.dispatch_telemetry.get("epochs_run", 0)
        if epochs:
            # Streaming runs: mean event-queue traffic per matching
            # epoch (arrivals + releases + the epoch event itself).
            stats["events_per_epoch"] = float(
                self.dispatch_telemetry.get("events_processed", 0)
            ) / float(epochs)
            groups = self.dispatch_telemetry.get("zone_groups", 0)
            decomposed = self.dispatch_telemetry.get("zone_decomposed_epochs", 0)
            if decomposed:
                stats["zone_groups_mean"] = float(groups) / float(decomposed)
        if self.stability_audit is not None:
            # frames_audited / audit_divergences / audit_healed / audit_ms;
            # divergences are expected to stay zero on every committed row.
            stats.update(self.stability_audit.summary())
            if total > 0.0:
                stats["audit_overhead_fraction"] = (
                    self.stability_audit.audit_ms / total
                )
        return stats

    def summary(self) -> dict[str, float]:
        """Headline averages, the quantities Figs. 6 and 7 plot."""
        delays = self.dispatch_delays_min()
        pd = self.passenger_dissatisfactions()
        td = self.taxi_dissatisfactions()
        return {
            "service_rate": self.service_rate,
            "mean_dispatch_delay_min": sum(delays) / len(delays) if delays else 0.0,
            "mean_passenger_dissatisfaction": sum(pd) / len(pd) if pd else 0.0,
            "mean_taxi_dissatisfaction": sum(td) / len(td) if td else 0.0,
            "shared_ride_fraction": self.shared_ride_fraction,
        }


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list (0.0 if empty)."""
    if not sorted_samples:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return sorted_samples[rank - 1]


class Simulator:
    """Run one dispatcher over one trace."""

    def __init__(
        self,
        dispatcher: Dispatcher,
        oracle: DistanceOracle,
        sim_config: SimulationConfig | None = None,
        *,
        overrun_s: float = 6.0 * 3600.0,
        repositioning: RepositioningPolicy | None = None,
        resilience: ResiliencePolicy | None = None,
        durability: DurabilityManager | None = None,
        auditor: StabilityAuditor | None = None,
    ):
        self.dispatcher = dispatcher
        self.oracle = oracle
        self.sim_config = sim_config if sim_config is not None else SimulationConfig()
        self.overrun_s = overrun_s
        self.repositioning = repositioning
        self.resilience = resilience
        self.durability = durability
        self.auditor = auditor

    def run(
        self,
        taxis: Sequence[Taxi],
        requests: Sequence[PassengerRequest],
        *,
        _resume: dict | None = None,
    ) -> SimulationResult:
        """Simulate until every request resolves or the horizon+overrun ends.

        ``_resume`` is the crash-recovery entry point (use
        :func:`~repro.resilience.checkpoint.resume_simulation`, not this
        parameter directly): the snapshot's state payload to restore
        before the frame loop starts.  Replayed frames are verified
        against the journal by the installed
        :class:`~repro.resilience.checkpoint.DurabilityManager`.
        """
        config = self.sim_config
        agents = {t.taxi_id: TaxiAgent.from_taxi(t) for t in taxis}
        if len(agents) != len(taxis):
            raise SimulationError("duplicate taxi ids in fleet")
        # The idle scan is the only per-frame pass over the whole fleet;
        # tracking availability in one float array (updated on assign)
        # turns it into a single vectorized comparison.
        agent_list = list(agents.values())
        agent_row = {agent.taxi_id: row for row, agent in enumerate(agent_list)}
        # Snapshots are memoized per agent on its location object; keeping
        # the current view in a row-indexed list turns the per-frame idle
        # gather into pure list indexing.  Entries refresh at the two
        # places an agent moves: assignment and repositioning.
        snapshots = [agent.snapshot() for agent in agent_list]
        available_at = np.fromiter(
            (agent.available_at_s for agent in agent_list),
            dtype=np.float64,
            count=len(agent_list),
        )

        ordered = sorted(requests, key=lambda r: (r.request_time_s, r.request_id))
        outcomes = [
            RequestOutcome(request_id=r.request_id, request_time_s=r.request_time_s)
            for r in ordered
        ]
        outcomes_by_id = {outcome.request_id: outcome for outcome in outcomes}
        if len(outcomes_by_id) != len(ordered):
            raise SimulationError("duplicate request ids in trace")

        arrival_cursor = 0
        # Insertion-ordered by admission; the per-frame dispatch batch is
        # one C-level ``list()`` call over its values.
        queue: dict[int, PassengerRequest] = {}
        assignments: list[AssignmentRecord] = []
        frame_stats: list[FrameStats] = []

        # One frame-scoped distance memo for the whole run; the engine
        # owns invalidation (begin_frame below), the dispatcher reads it.
        cache = FrameDistanceCache(self.oracle)
        self.dispatcher.frame_cache = cache
        # Warm solver state (if the dispatcher carries any) never outlives
        # a run: the first frame of every run is a cold frame.
        self.dispatcher.reset_warm_state(counters=True)

        # The degradation ladder (if any) is instantiated once per run;
        # every rung shares the frame cache and the run's oracle.
        policy = self.resilience
        rungs: list[tuple[Rung, Dispatcher]] | None = None
        report: ResilienceReport | None = None
        if policy is not None:
            rungs = policy.build_rungs(self.dispatcher, self.oracle)
            report = ResilienceReport()
            for _, rung_dispatcher in rungs:
                rung_dispatcher.frame_cache = cache
                rung_dispatcher.reset_warm_state(counters=True)
            if policy.fault_injector is not None:
                # Faults are confined to dispatch attempts: the ladder
                # arms the injector per attempt and the engine's own
                # accounting never runs with it armed.
                policy.fault_injector.disarm()

        frame = config.frame_length_s
        deadline = config.horizon_s + self.overrun_s
        time_s = frame
        frames_run = 0
        #: Running CRC chained over every frame's assignment pairs; the
        #: journal's cross-frame integrity digest.
        cum_crc = 0

        reposition_step_km = config.taxi_speed_kms * frame

        durability = self.durability
        auditor = self.auditor
        if auditor is not None:
            auditor.reset()
        if durability is not None:
            durability.begin_run(
                {
                    "dispatcher": self.dispatcher.name,
                    "n_taxis": len(taxis),
                    "n_requests": len(requests),
                    "frame_length_s": config.frame_length_s,
                    "horizon_s": config.horizon_s,
                    "warm_start": bool(getattr(self.dispatcher, "warm_start", False)),
                    "sharded": bool(getattr(self.dispatcher, "sharded", False)),
                },
                resuming=durability.resuming,
            )
        elif _resume is not None:
            raise SimulationError("_resume state requires a DurabilityManager")

        if _resume is not None:
            # Crash recovery: adopt the snapshot's state wholesale.  All
            # floats crossed the snapshot as JSON (shortest-repr round
            # trip, exact), so the restored run is *bit*-identical to the
            # interrupted one, not approximately so.
            requests_by_id = {r.request_id: r for r in ordered}
            arrival_cursor = int(_resume["arrival_cursor"])
            for rid in _resume["queue"]:
                queue[rid] = requests_by_id[rid]
            for row in _resume["agents"]:
                taxi_id, x, y, avail, driven, trips, served = row
                agent = agents[taxi_id]
                agent.location = Point(x, y)
                agent.available_at_s = avail
                agent.total_driven_km = driven
                agent.completed_trips = trips
                agent.served_requests = served
            snapshots[:] = [agent.snapshot() for agent in agent_list]
            available_at[:] = [agent.available_at_s for agent in agent_list]
            for row in _resume["outcomes"]:
                outcome = outcomes_by_id[row[0]]
                outcome.dispatch_time_s = row[1]
                outcome.pickup_time_s = row[2]
                outcome.dropoff_time_s = row[3]
                outcome.passenger_dissatisfaction = row[4]
                outcome.group_size = row[5]
                outcome.taxi_id = row[6]
                outcome.abandoned = row[7]
            assignments.extend(
                AssignmentRecord(row[0], row[1], tuple(row[2]), row[3], row[4], row[5])
                for row in _resume["assignments"]
            )
            frame_stats.extend(FrameStats(*row) for row in _resume["frame_stats"])
            if report is not None:
                for row in _resume.get("resilience") or []:
                    report.record(FrameResilienceRecord(*row))
            if auditor is not None:
                for row in _resume.get("audit") or []:
                    auditor.report.record(StabilityAuditRecord(*row))
            self.dispatcher.restore_state(_resume.get("dispatch") or {})
            if policy is not None and policy.fault_injector is not None:
                injector_state = _resume.get("fault_injector")
                if injector_state is not None:
                    policy.fault_injector.restore_state(injector_state)
            if self.repositioning is not None:
                repositioning_state = _resume.get("repositioning")
                if repositioning_state is not None:
                    self.repositioning.restore_state(repositioning_state)
            cum_crc = int(_resume["cum_crc"])
            frames_run = int(_resume["frames_run"])
            time_s = float(_resume["time_s"]) + frame

        def _state_payload() -> dict:
            """Everything a resumed run needs, as pure JSON values.

            Warm/sharded solver state is deliberately absent: resume
            restarts those paths cold, which is proven bit-identical
            (DESIGN.md §10–11) and keeps snapshots solver-agnostic.
            """
            payload: dict = {
                "time_s": time_s,
                "frames_run": frames_run,
                "arrival_cursor": arrival_cursor,
                "cum_crc": cum_crc,
                "queue": list(queue.keys()),
                "agents": [
                    [a.taxi_id, a.location.x, a.location.y, a.available_at_s,
                     a.total_driven_km, a.completed_trips, a.served_requests]
                    for a in agent_list
                ],
                # Only touched outcomes travel; the rest reconstruct from
                # the trace.
                "outcomes": [
                    [o.request_id, o.dispatch_time_s, o.pickup_time_s,
                     o.dropoff_time_s, o.passenger_dissatisfaction,
                     o.group_size, o.taxi_id, o.abandoned]
                    for o in outcomes
                    if o.dispatch_time_s is not None or o.abandoned
                ],
                "assignments": [
                    [r.frame_time_s, r.taxi_id, list(r.request_ids),
                     r.taxi_dissatisfaction, r.total_drive_km, r.revenue_km]
                    for r in assignments
                ],
                "frame_stats": [
                    [f.time_s, f.queue_length, f.idle_taxis,
                     f.dispatched_requests, f.dispatched_taxis, f.abandoned,
                     f.dispatch_ms]
                    for f in frame_stats
                ],
                "dispatch": self.dispatcher.state_payload(),
            }
            if report is not None:
                payload["resilience"] = [
                    [r.time_s, r.rung, r.rung_index, r.trigger, r.attempts,
                     r.faults, r.budget_s, r.elapsed_s]
                    for r in report.frames
                ]
            if auditor is not None:
                payload["audit"] = [
                    [r.time_s, r.frame, r.mode, r.requests, r.taxis,
                     r.blocking_pairs, r.diverged, r.healed, r.audit_ms]
                    for r in auditor.report.frames
                ]
            if policy is not None and policy.fault_injector is not None:
                payload["fault_injector"] = policy.fault_injector.state_payload()
            if self.repositioning is not None:
                payload["repositioning"] = self.repositioning.state_payload()
            return payload

        while time_s <= deadline:
            # Admit requests that arrived during the last frame.
            admitted: list[PassengerRequest] = []
            while (
                arrival_cursor < len(ordered)
                and ordered[arrival_cursor].request_time_s <= time_s
            ):
                incoming = ordered[arrival_cursor]
                queue[incoming.request_id] = incoming
                admitted.append(incoming)
                arrival_cursor += 1

            # Optional idle-taxi cruising (off in the paper's model).
            if self.repositioning is not None:
                self.repositioning.observe_requests(admitted)
                for agent in agents.values():
                    if not agent.is_idle_at(time_s):
                        continue
                    target = self.repositioning.target_for(agent.taxi_id, agent.location)
                    if target is None:
                        continue
                    moved = RepositioningPolicy.step_toward(
                        agent.location, target, reposition_step_km
                    )
                    agent.total_driven_km += agent.location.distance_to(moved)
                    agent.location = moved
                    snapshots[agent_row[agent.taxi_id]] = agent.snapshot()

            # Expire requests whose patience ran out.
            abandoned_now = 0
            if config.passenger_patience_s != float("inf"):
                # The queue is insertion-ordered by admission, and
                # admissions follow the trace's request-time order, so
                # request times are non-decreasing along the queue and
                # the expired entries form a prefix: stop at the first
                # survivor instead of scanning the whole queue.
                expired = []
                for rid, queued in queue.items():
                    if time_s - queued.request_time_s <= config.passenger_patience_s:
                        break
                    expired.append(rid)
                for rid in expired:
                    del queue[rid]
                    outcomes_by_id[rid].abandoned = True
                abandoned_now = len(expired)
                cache.retire_requests(expired)

            queue_length_before = len(queue)
            dispatched_now = 0
            assignments_before = len(assignments)
            idle_rows = np.flatnonzero(available_at <= time_s)
            idle = [snapshots[row] for row in idle_rows.tolist()]
            dispatch_ms = 0.0
            frame_record: FrameResilienceRecord | None = None
            audit_record: StabilityAuditRecord | None = None
            frame_mode: str | None = None
            cache.begin_frame()  # taxi positions changed: drop stale matrices
            if queue and idle:
                batch = list(queue.values())
                # repro-lint: disable=REP001 telemetry only: dispatch_ms never feeds a decision
                dispatch_start = time.perf_counter()
                if policy is None:
                    schedule = self.dispatcher.dispatch(idle, batch)
                else:
                    schedule, record = self._dispatch_resilient(
                        policy, rungs, idle, batch, time_s
                    )
                    report.record(record)
                    frame_record = record
                    # Warm state is only valid between consecutive frames
                    # solved by the same dispatcher.  Rungs that did not
                    # answer this frame (including a primary that failed
                    # mid-solve and may have half-updated its state) must
                    # restart cold next time they run.
                    for index, (_, rung_dispatcher) in enumerate(rungs):
                        if index != record.rung_index:
                            rung_dispatcher.reset_warm_state()
                # repro-lint: disable=REP001 telemetry only: dispatch_ms never feeds a decision
                dispatch_ms = (time.perf_counter() - dispatch_start) * 1e3
                if frame_record is None or frame_record.rung_index == 0:
                    frame_mode = self.dispatcher.last_frame_mode
                    if auditor is not None:
                        # Sampled stability re-verification of fast-path
                        # frames; on divergence the schedule coming back
                        # is a healed cold recomputation, and only the
                        # primary dispatcher's frames are eligible (a
                        # ladder fallback has no carried state to audit).
                        schedule, audit_record = auditor.audit_frame(
                            frame_index=frames_run,
                            time_s=time_s,
                            dispatcher=self.dispatcher,
                            taxis=idle,
                            requests=batch,
                            schedule=schedule,
                        )
                dcfg = self.dispatcher.config
                oracle = self.oracle
                if (
                    isinstance(schedule, PackedSingleSchedule)
                    and schedule.taxis is idle
                    and schedule.requests is batch
                ):
                    # Array-backed frame: the schedule's rows index this
                    # very frame's ``idle`` / ``batch`` (checked by
                    # identity above, so every row names a known
                    # entity), and the no-taxi-twice / no-request-twice
                    # validation the object path runs per id becomes two
                    # uniqueness checks on the row arrays.  The executed
                    # plans and every recorded number replicate the
                    # object path's fast branch bit for bit.
                    t_rows = schedule.taxi_rows
                    r_rows = schedule.request_rows
                    n_pairs = int(t_rows.size)
                    if n_pairs and (
                        np.unique(t_rows).size != n_pairs
                        or np.unique(r_rows).size != n_pairs
                        or int(t_rows.min()) < 0
                        or int(t_rows.max()) >= len(idle)
                        or int(r_rows.min()) < 0
                        or int(r_rows.max()) >= len(batch)
                    ):
                        raise ValueError(
                            "packed schedule has duplicate or out-of-range rows"
                        )
                    picks = schedule.pickup_km
                    trips = schedule.trip_km
                    pick_list = picks.tolist() if picks is not None else None
                    trip_list = trips.tolist() if trips is not None else None
                    retired: list[int] = []
                    for index, (t_row, r_row) in enumerate(
                        zip(t_rows.tolist(), r_rows.tolist())
                    ):
                        request = batch[r_row]
                        taxi_id = idle[t_row].taxi_id
                        agent = agents[taxi_id]
                        # Solver-supplied legs are bit-equal to the
                        # scalar oracle by the batch-exactness contract;
                        # without them the legs are derived exactly as
                        # the object path derives them.
                        d1 = (
                            pick_list[index]
                            if pick_list is not None
                            else oracle.distance(agent.location, request.pickup)
                        )
                        d2 = (
                            trip_list[index]
                            if trip_list is not None
                            else cache.trip_distance(request)
                        )
                        pickup_km = 0.0 + d1
                        total_drive = pickup_km + d2
                        detour = (total_drive - pickup_km) - d2
                        taxi_dis = total_drive - (dcfg.alpha + 1.0) * d2
                        pickup_s, dropoff_s = agent.assign_single(
                            request, time_s, d1, d2, config
                        )
                        rid = request.request_id
                        outcome = outcomes_by_id[rid]
                        outcome.pickup_time_s = pickup_s
                        outcome.dropoff_time_s = dropoff_s
                        outcome.dispatch_time_s = time_s
                        outcome.taxi_id = taxi_id
                        outcome.group_size = 1
                        outcome.passenger_dissatisfaction = (
                            pickup_km + dcfg.beta * detour
                        )
                        del queue[rid]
                        retired.append(rid)
                        row = agent_row[taxi_id]
                        available_at[row] = agent.available_at_s
                        snapshots[row] = agent.snapshot()
                        assignments.append(
                            AssignmentRecord(
                                frame_time_s=time_s,
                                taxi_id=taxi_id,
                                request_ids=(rid,),
                                taxi_dissatisfaction=taxi_dis,
                                total_drive_km=total_drive,
                                revenue_km=d2,
                            )
                        )
                    dispatched_now = n_pairs
                    cache.retire_requests(retired)
                else:
                    # The queue mapping doubles as the known-request-id
                    # view; only the handful of assigned requests need
                    # resolving, not the whole batch.
                    schedule.validate_ids({t.taxi_id for t in idle}, queue)
                    requests_by_id = {
                        rid: queue[rid]
                        for scheduled in schedule.assignments
                        for rid in scheduled.request_ids
                    }
                    for assignment in schedule.assignments:
                        taxi_id = assignment.taxi_id
                        agent = agents[taxi_id]
                        rids = assignment.request_ids
                        stops = assignment.stops
                        request = requests_by_id[rids[0]] if len(rids) == 1 else None
                        if (
                            request is not None
                            and len(stops) == 2
                            and stops[0].point is request.pickup
                            and stops[1].point is request.dropoff
                        ):
                            # The canonical non-sharing plan (drive to the
                            # pickup, then the dropoff): inline the
                            # assignment_metrics formulas in their exact
                            # operation order — the ``0.0 +`` seed, the
                            # cumulative subtraction, and all — so every
                            # number is bit-identical while skipping the
                            # per-assignment dict/dataclass machinery.  The
                            # trip leg comes from the frame cache (exact by
                            # contract) and both legs feed assign_single, so
                            # the oracle runs once per leg for the frame.
                            d1 = oracle.distance(agent.location, request.pickup)
                            d2 = cache.trip_distance(request)
                            pickup_km = 0.0 + d1
                            total_drive = pickup_km + d2
                            detour = (total_drive - pickup_km) - d2
                            taxi_dis = total_drive - (dcfg.alpha + 1.0) * d2
                            revenue = d2
                            pickup_s, dropoff_s = agent.assign_single(
                                request, time_s, d1, d2, config
                            )
                            rid = rids[0]
                            outcome = outcomes_by_id[rid]
                            outcome.pickup_time_s = pickup_s
                            outcome.dropoff_time_s = dropoff_s
                            outcome.dispatch_time_s = time_s
                            outcome.taxi_id = taxi_id
                            outcome.group_size = 1
                            outcome.passenger_dissatisfaction = (
                                pickup_km + dcfg.beta * detour
                            )
                            del queue[rid]
                            dispatched_now += 1
                        else:
                            metrics = assignment_metrics(
                                agent.snapshot(), assignment, requests_by_id, oracle, dcfg
                            )
                            taxi_dis = metrics.taxi_dissatisfaction
                            total_drive = metrics.total_drive_km
                            revenue = sum(
                                cache.trip_distance(requests_by_id[rid]) for rid in rids
                            )
                            arrivals = agent.assign(assignment, time_s, oracle, config)
                            for arrival in arrivals:
                                outcome = outcomes_by_id[arrival.request_id]
                                if arrival.is_pickup:
                                    outcome.pickup_time_s = arrival.time_s
                                else:
                                    outcome.dropoff_time_s = arrival.time_s
                            for rid in rids:
                                outcome = outcomes_by_id[rid]
                                outcome.dispatch_time_s = time_s
                                outcome.taxi_id = taxi_id
                                outcome.group_size = len(rids)
                                outcome.passenger_dissatisfaction = (
                                    metrics.passenger_dissatisfaction[rid]
                                )
                                del queue[rid]
                                dispatched_now += 1
                        row = agent_row[taxi_id]
                        available_at[row] = agent.available_at_s
                        snapshots[row] = agent.snapshot()
                        assignments.append(
                            AssignmentRecord(
                                frame_time_s=time_s,
                                taxi_id=taxi_id,
                                request_ids=rids,
                                taxi_dissatisfaction=taxi_dis,
                                total_drive_km=total_drive,
                                revenue_km=revenue,
                            )
                        )
                    # Dispatched requests never return to a frame; their
                    # request-keyed memos are dead (revenue above was their
                    # last read).
                    cache.retire_requests(
                        rid
                        for assignment in schedule.assignments
                        for rid in assignment.request_ids
                    )

            frame_stats.append(
                FrameStats(
                    time_s=time_s,
                    queue_length=queue_length_before,
                    idle_taxis=len(idle),
                    dispatched_requests=dispatched_now,
                    dispatched_taxis=len(assignments) - assignments_before,
                    abandoned=abandoned_now,
                    dispatch_ms=dispatch_ms,
                )
            )
            frame_index = frames_run
            frames_run += 1
            if durability is not None:
                frame_pairs = [
                    (rid, assigned.taxi_id)
                    for assigned in assignments[assignments_before:]
                    for rid in assigned.request_ids
                ]
                cum_crc = frame_pairs_crc(frame_pairs, seed=cum_crc)
                injector = policy.fault_injector if policy is not None else None
                digest = FrameDigest(
                    frame=frame_index,
                    time_s=time_s,
                    queue=queue_length_before,
                    idle=len(idle),
                    dispatched=dispatched_now,
                    abandoned=abandoned_now,
                    pairs_crc=frame_pairs_crc(frame_pairs),
                    cum_crc=cum_crc,
                    rng=injector.state_fingerprint() if injector is not None else None,
                    rung=frame_record.rung if frame_record is not None else None,
                    mode=frame_mode,
                    audited=audit_record is not None,
                    divergence=audit_record.diverged if audit_record is not None else False,
                )
                # A mid-frame crash loses this frame's journal record:
                # resume replays it from the previous checkpoint.  The
                # boundary crash point (after append + checkpoint) lives
                # inside commit_frame.
                durability.crash_point(frame_index, "mid-frame")
                durability.commit_frame(digest, _state_payload)
            # Past the horizon no new requests arrive; stop as soon as the
            # queue drains (or patience will clear it).
            if time_s >= config.horizon_s and not queue and arrival_cursor >= len(ordered):
                break
            time_s += frame

        revenue_by_taxi: dict[int, float] = {t: 0.0 for t in agents}
        for record in assignments:
            revenue_by_taxi[record.taxi_id] += record.revenue_km
        taxi_stats = {
            taxi_id: TaxiStats(
                taxi_id=taxi_id,
                driven_km=agent.total_driven_km,
                rides=agent.completed_trips,
                requests_served=agent.served_requests,
                revenue_km=revenue_by_taxi[taxi_id],
            )
            for taxi_id, agent in agents.items()
        }

        # Seal the durability artifacts: the journal's end record and a
        # final ``finished`` snapshot, so a later resume attempt can tell
        # a completed run from an interrupted one.
        if durability is not None:
            durability.finish_run(
                max(frames_run - 1, 0),
                {
                    "frames": frames_run,
                    "assignments": len(assignments),
                    "cum_crc": cum_crc,
                },
                _state_payload,
            )

        # Detach the run-scoped cache: a dispatcher used outside this
        # engine afterwards must not read matrices from the last frame.
        # Run telemetry is harvested first, then warm state dropped for
        # the same reason — it describes this run's final frame only.
        telemetry: dict[str, float | int] = dict(self.dispatcher.run_telemetry())
        telemetry.update(cache.stats())
        if durability is not None:
            telemetry["replay_frames_verified"] = durability.frames_verified
        self.dispatcher.frame_cache = None
        self.dispatcher.reset_warm_state()
        if rungs is not None:
            for _, rung_dispatcher in rungs:
                rung_dispatcher.frame_cache = None
                rung_dispatcher.frame_budget = None
                rung_dispatcher.reset_warm_state()

        # Anything still queued at the deadline is unserved.
        return SimulationResult(
            dispatcher_name=self.dispatcher.name,
            outcomes=outcomes,
            assignments=assignments,
            frames_run=frames_run,
            final_time_s=min(time_s, deadline),
            taxi_stats=taxi_stats,
            frame_stats=frame_stats,
            frame_length_s=config.frame_length_s,
            resilience=report,
            dispatch_telemetry=telemetry,
            stability_audit=auditor.report if auditor is not None else None,
        )

    def _dispatch_resilient(
        self,
        policy: ResiliencePolicy,
        rungs: list[tuple[Rung, Dispatcher]],
        idle: list[Taxi],
        batch: list[PassengerRequest],
        time_s: float,
    ) -> tuple[DispatchSchedule, FrameResilienceRecord]:
        """Walk the degradation ladder until some rung answers the frame.

        Budgeted rungs share one :class:`FrameBudget` anchored at the
        frame's start, each extended to its own (later) deadline slice;
        transient faults retry the same rung up to
        ``policy.transient_retries`` times; any other dispatcher error
        falls to the next rung.  If even the terminal rung fails, the
        frame is answered with an empty schedule and recorded as
        dropped — the condition chaos runs assert never happens.
        """
        frame = self.sim_config.frame_length_s
        budget = policy.make_budget(frame)
        injector = policy.fault_injector
        budgeted_count = sum(1 for rung, _ in rungs if rung.budgeted)
        budgeted_seen = 0
        attempts = 0
        faults = 0
        trigger: str | None = None
        for index, (rung, dispatcher) in enumerate(rungs):
            if rung.budgeted:
                budget.extend_to(
                    policy.rung_deadline_s(budgeted_seen, budgeted_count, frame)
                )
                budgeted_seen += 1
            for _ in range(policy.transient_retries + 1):
                attempts += 1
                dispatcher.frame_budget = budget if rung.budgeted else None
                if injector is not None:
                    injector.arm()
                try:
                    schedule = dispatcher.dispatch(idle, batch)
                except FrameBudgetExceededError:
                    trigger = trigger or "deadline"
                    break  # this rung is out of time: next rung
                except EnumerationBudgetError:
                    # A work budget the rung should have consumed escaped
                    # it; named before ReproError so it is never swallowed
                    # as a generic error (REP004) and gets its own trigger.
                    trigger = trigger or "enum-budget"
                    break  # the rung could not finish its enumeration
                except TransientFaultError:
                    faults += 1
                    trigger = trigger or "fault"
                    continue  # transient: retry the same rung
                except ReproError:
                    trigger = trigger or "error"
                    break  # broken decision: next rung
                finally:
                    if injector is not None:
                        injector.disarm()
                    dispatcher.frame_budget = None
                return schedule, FrameResilienceRecord(
                    time_s=time_s,
                    rung=rung.name,
                    rung_index=index,
                    trigger=trigger,
                    attempts=attempts,
                    faults=faults,
                    budget_s=budget.duration_s,
                    elapsed_s=budget.elapsed(),
                )
        return DispatchSchedule(), FrameResilienceRecord(
            time_s=time_s,
            rung=DROPPED_RUNG,
            rung_index=len(rungs),
            trigger=trigger,
            attempts=attempts,
            faults=faults,
            budget_s=budget.duration_s,
            elapsed_s=budget.elapsed(),
        )
