"""Frame-batched dispatch simulation."""

from repro.simulation.engine import SimulationResult, Simulator
from repro.simulation.events import AssignmentRecord, RequestOutcome, TaxiStats
from repro.simulation.frame_cache import FrameDistanceCache
from repro.simulation.repositioning import (
    DriftToAnchor,
    DriftToRecentDemand,
    NoRepositioning,
    RepositioningPolicy,
)
from repro.simulation.taxi_state import StopArrival, TaxiAgent

__all__ = [
    "Simulator",
    "SimulationResult",
    "FrameDistanceCache",
    "RequestOutcome",
    "AssignmentRecord",
    "TaxiStats",
    "TaxiAgent",
    "StopArrival",
    "RepositioningPolicy",
    "NoRepositioning",
    "DriftToAnchor",
    "DriftToRecentDemand",
]
