"""Taxi agents: position and availability across frames."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SimulationConfig
from repro.core.errors import SimulationError
from repro.core.types import Assignment, PassengerRequest, Taxi
from repro.geometry.distance import DistanceOracle
from repro.geometry.point import Point

__all__ = ["TaxiAgent", "StopArrival"]


@dataclass(frozen=True, slots=True)
class StopArrival:
    """When the taxi reaches one stop of its plan."""

    request_id: int
    is_pickup: bool
    time_s: float
    point: Point


@dataclass(slots=True)
class TaxiAgent:
    """Mutable simulation state of one taxi."""

    taxi_id: int
    seats: int
    location: Point
    available_at_s: float = 0.0
    total_driven_km: float = 0.0
    completed_trips: int = 0
    served_requests: int = 0
    _destination: Point | None = field(default=None, repr=False)
    _snapshot: Taxi | None = field(default=None, repr=False)

    @classmethod
    def from_taxi(cls, taxi: Taxi) -> "TaxiAgent":
        return cls(taxi_id=taxi.taxi_id, seats=taxi.seats, location=taxi.location)

    def is_idle_at(self, time_s: float) -> bool:
        return self.available_at_s <= time_s

    def snapshot(self) -> Taxi:
        """The immutable view dispatchers see.

        Memoized on the location object: ``taxi_id`` and ``seats`` never
        change and every movement (``assign``, repositioning) rebinds
        ``location``, so an unchanged location object proves the cached
        view is current.  An agent idle across many frames therefore
        presents the *same* :class:`Taxi` each frame, which warm-start
        dispatchers exploit to classify it as retained by identity.
        """
        snap = self._snapshot
        if snap is None or snap.location is not self.location:
            snap = Taxi(taxi_id=self.taxi_id, location=self.location, seats=self.seats)
            self._snapshot = snap
        return snap

    def assign(
        self,
        assignment: Assignment,
        start_time_s: float,
        oracle: DistanceOracle,
        sim_config: SimulationConfig,
    ) -> list[StopArrival]:
        """Commit the taxi to ``assignment`` starting at ``start_time_s``.

        Returns the arrival schedule; the agent jumps to its final stop
        and becomes available when the last dropoff completes (the
        engine's frame granularity never observes the taxi mid-leg).
        """
        if not self.is_idle_at(start_time_s):
            raise SimulationError(
                f"taxi {self.taxi_id} assigned at {start_time_s} but busy until {self.available_at_s}"
            )
        if assignment.taxi_id != self.taxi_id:
            raise SimulationError(
                f"assignment for taxi {assignment.taxi_id} given to taxi {self.taxi_id}"
            )
        arrivals: list[StopArrival] = []
        clock = start_time_s
        position = self.location
        for stop in assignment.stops:
            leg_km = oracle.distance(position, stop.point)
            clock += sim_config.travel_time_s(leg_km)
            self.total_driven_km += leg_km
            position = stop.point
            arrivals.append(
                StopArrival(
                    request_id=stop.request_id,
                    is_pickup=stop.is_pickup,
                    time_s=clock,
                    point=stop.point,
                )
            )
        self.location = position
        self.available_at_s = clock
        self.completed_trips += 1
        self.served_requests += len(assignment.request_ids)
        return arrivals

    def assign_single(
        self,
        request: PassengerRequest,
        start_time_s: float,
        pickup_leg_km: float,
        trip_km: float,
        sim_config: SimulationConfig,
    ) -> tuple[float, float]:
        """:meth:`assign` specialised to the canonical non-sharing plan.

        Applies exactly the state updates :meth:`assign` would for a
        two-stop pickup→dropoff assignment of ``request`` — same
        operations in the same order, so every accumulated float is
        bit-identical — and returns ``(pickup_time_s, dropoff_time_s)``
        instead of building :class:`StopArrival` objects.  The caller
        supplies the two leg lengths and owes bit-equality with the
        scalar oracle (the engine passes distances it already computed
        for the frame's metrics under the batch-exactness contract);
        ownership of the assignment is the caller's to check.
        """
        if not self.is_idle_at(start_time_s):
            raise SimulationError(
                f"taxi {self.taxi_id} assigned at {start_time_s} but busy until {self.available_at_s}"
            )
        clock = start_time_s + sim_config.travel_time_s(pickup_leg_km)
        self.total_driven_km += pickup_leg_km
        pickup_time_s = clock
        clock += sim_config.travel_time_s(trip_km)
        self.total_driven_km += trip_km
        self.location = request.dropoff
        self.available_at_s = clock
        self.completed_trips += 1
        self.served_requests += 1
        return pickup_time_s, clock
