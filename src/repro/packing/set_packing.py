"""Maximum Set Packing (Algorithm 3, line 2).

The sharing stage packs passenger requests into disjoint feasible
groups, maximizing the *number of packed groups* (Eqs. 1–3).  Three
solvers with one interface (each takes groups as sequences of frozen
member-id sets and returns chosen indices):

* :func:`greedy_set_packing` — pick sets in order of least conflict;
  the classic baseline.
* :func:`local_search_packing` — greedy followed by (p, p+1)-swap local
  search, the Hurkens–Schrijver scheme behind the paper's cited
  ``(max_k |c_k| + 2)/3`` approximation regime [21].
* :func:`exact_set_packing` — branch-and-bound, exponential but exact;
  ground truth for tests and the core of the ILP baseline.

All solvers are deterministic: ties break by set index.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.core.errors import PackingError
from repro.resilience.budget import WorkBudget

__all__ = [
    "PackingResult",
    "greedy_set_packing",
    "local_search_packing",
    "exact_set_packing",
    "verify_packing",
]


@dataclass(frozen=True, slots=True)
class PackingResult:
    """Chosen set indices plus the elements they cover.

    ``truncated`` marks a best-so-far *anytime* result: a work budget ran
    out before the solver finished, so the packing is valid but possibly
    smaller than the solver would otherwise return.
    """

    chosen: tuple[int, ...]
    covered: frozenset[int]
    truncated: bool = False

    @property
    def size(self) -> int:
        return len(self.chosen)


def _normalize(sets: Sequence[Iterable[int]]) -> list[frozenset[int]]:
    normalized = [frozenset(s) for s in sets]
    for index, s in enumerate(normalized):
        if not s:
            raise PackingError(f"set {index} is empty")
    return normalized


def verify_packing(sets: Sequence[Iterable[int]], chosen: Sequence[int]) -> bool:
    """Whether ``chosen`` indices form a valid (pairwise disjoint) packing."""
    normalized = _normalize(sets)
    covered: set[int] = set()
    for index in chosen:
        if not 0 <= index < len(normalized):
            return False
        if covered & normalized[index]:
            return False
        covered |= normalized[index]
    return len(set(chosen)) == len(chosen)


def greedy_set_packing(sets: Sequence[Iterable[int]]) -> PackingResult:
    """Greedy maximum set packing: least-conflicting sets first.

    Sets are taken in increasing order of (conflict degree, size, index),
    skipping any that overlap the packing so far.  Conflict degree counts
    how many other sets share an element — picking low-conflict sets
    first preserves the most future choices.
    """
    normalized = _normalize(sets)
    # element -> indices of sets containing it
    by_element: dict[int, list[int]] = {}
    for index, s in enumerate(normalized):
        for element in s:
            by_element.setdefault(element, []).append(index)
    conflict = [
        len({other for element in s for other in by_element[element]} - {index})
        for index, s in enumerate(normalized)
    ]
    order = sorted(range(len(normalized)), key=lambda i: (conflict[i], len(normalized[i]), i))
    covered: set[int] = set()
    chosen: list[int] = []
    for index in order:
        if covered & normalized[index]:
            continue
        covered |= normalized[index]
        chosen.append(index)
    chosen.sort()
    return PackingResult(chosen=tuple(chosen), covered=frozenset(covered))


def local_search_packing(
    sets: Sequence[Iterable[int]],
    *,
    initial: Sequence[int] | None = None,
    swap_out: int = 2,
    max_rounds: int = 50,
    budget: WorkBudget | None = None,
) -> PackingResult:
    """Greedy + (p, p+1)-swap local search for ``p ≤ swap_out``.

    Repeatedly augments: add any disjoint unused set (a (0,1)-swap), or
    remove ``p`` chosen sets and insert ``p+1`` pairwise-disjoint new
    ones.  With ``swap_out = 2`` this is the local-search regime that
    yields the cited (k+2)/3 ratio for k-set packing; rounds are capped
    defensively, though convergence is typically immediate.

    ``budget`` charges one node per swap probe; an exhausted budget stops
    the search and returns the current (always valid) packing with
    ``truncated`` set — the anytime behaviour the frame deadline relies
    on.
    """
    if swap_out < 0:
        raise PackingError(f"swap_out must be non-negative, got {swap_out}")
    normalized = _normalize(sets)
    chosen = set(initial) if initial is not None else set(greedy_set_packing(sets).chosen)
    if not verify_packing(sets, sorted(chosen)):
        raise PackingError("initial selection is not a valid packing")
    truncated = False

    def covered_by(indices: Iterable[int]) -> set[int]:
        covered: set[int] = set()
        for index in indices:
            covered |= normalized[index]
        return covered

    for _ in range(max_rounds):
        if budget is not None and not budget.spend():
            truncated = True
            break
        improved = False
        covered = covered_by(chosen)

        # (0, 1)-swaps: free additions.
        for index in range(len(normalized)):
            if index not in chosen and not (normalized[index] & covered):
                chosen.add(index)
                covered |= normalized[index]
                improved = True
        if improved:
            continue

        # (p, p+1)-swaps.
        done = False
        for p in range(1, swap_out + 1):
            for removal in itertools.combinations(sorted(chosen), p):
                if budget is not None and not budget.spend():
                    truncated = True
                    done = True
                    break
                remaining = chosen - set(removal)
                base_cover = covered_by(remaining)
                candidates = [
                    i
                    for i in range(len(normalized))
                    if i not in remaining and not (normalized[i] & base_cover)
                ]
                if len(candidates) <= p:
                    continue
                addition = _find_disjoint(normalized, candidates, p + 1)
                if addition is not None:
                    chosen = remaining | set(addition)
                    improved = True
                    done = True
                    break
            if done:
                break
        if truncated or not improved:
            break

    result = tuple(sorted(chosen))
    return PackingResult(
        chosen=result, covered=frozenset(covered_by(result)), truncated=truncated
    )


def _find_disjoint(
    normalized: list[frozenset[int]], candidates: list[int], count: int
) -> tuple[int, ...] | None:
    """First (by index order) ``count`` pairwise-disjoint candidate sets."""

    def extend(start: int, taken: list[int], covered: frozenset[int]) -> tuple[int, ...] | None:
        if len(taken) == count:
            return tuple(taken)
        for pos in range(start, len(candidates)):
            index = candidates[pos]
            if normalized[index] & covered:
                continue
            found = extend(pos + 1, taken + [index], covered | normalized[index])
            if found is not None:
                return found
        return None

    return extend(0, [], frozenset())


def exact_set_packing(
    sets: Sequence[Iterable[int]],
    *,
    node_limit: int = 2_000_000,
    budget: WorkBudget | None = None,
) -> PackingResult:
    """Exact maximum set packing by branch-and-bound.

    Branches on include/exclude in index order with an optimistic bound
    (remaining sets all packable).  ``node_limit`` guards against
    adversarial inputs; exceeding it raises :class:`PackingError` rather
    than silently returning a suboptimal answer.

    ``budget`` is the cooperative alternative: when it exhausts, the
    search stops and the best packing found so far is returned with
    ``truncated`` set (a valid anytime answer — the incumbent is always
    a pairwise-disjoint selection).
    """
    normalized = _normalize(sets)
    n = len(normalized)
    best: list[tuple[int, ...]] = [()]
    nodes = 0
    stopped = False

    # The exclude branch is a loop (not a recursive call) so recursion
    # depth is bounded by the packing size, never by the set count.
    def branch(index: int, taken: list[int], covered: frozenset[int]) -> None:
        nonlocal nodes, stopped
        if len(taken) > len(best[0]):
            best[0] = tuple(taken)
        while index < n and not stopped:
            nodes += 1
            if nodes > node_limit:
                raise PackingError(f"branch-and-bound exceeded {node_limit} nodes")
            if budget is not None and not budget.spend():
                stopped = True
                return
            # Optimistic bound: every remaining set could be packed.
            if len(taken) + (n - index) <= len(best[0]):
                return
            if not (normalized[index] & covered):
                taken.append(index)
                branch(index + 1, taken, covered | normalized[index])
                taken.pop()
            index += 1

    branch(0, [], frozenset())
    chosen = best[0]
    covered: set[int] = set()
    for i in chosen:
        covered |= normalized[i]
    return PackingResult(chosen=chosen, covered=frozenset(covered), truncated=stopped)
