"""Enumerating feasible sharing groups (Algorithm 3, line 1).

A subset ``c_k`` of requests is feasible when, along the group's optimal
shared route, every member's detour ``D_ck(r_j^s, r_j^d) − D(r_j^s,
r_j^d)`` is at most θ.  The paper enumerates subsets of size ≤ 3
exhaustively in O(|R|³).

By default triples are only *tested* when all three member pairs are
feasible.  This pruning is motivated by a near-downward-closure: for
metric oracles, deleting a member's stops from a feasible triple's
route yields a θ-respecting pair route, so the pair *could* share
within θ — though the pair's own length-optimal route (which the
feasibility definition inspects) may occasionally differ.  The pruning
is therefore a documented heuristic that removes the vast majority of
the 90-sequence route searches while rarely dropping a candidate
triple; pass ``assume_metric=False`` to reproduce the paper's exact
O(|R|³) enumeration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from collections.abc import Sequence

import numpy as np

from repro.core.config import DispatchConfig
from repro.core.errors import PackingError
from repro.core.types import PassengerRequest, RideGroup
from repro.geometry.batch import oracle_pairwise
from repro.geometry.distance import DistanceOracle
from repro.resilience.budget import WorkBudget
from repro.routing.shared_route import build_ride_group, feasible_shared_route

__all__ = ["FeasibilityStats", "group_is_feasible", "enumerate_feasible_groups"]


@dataclass(slots=True)
class FeasibilityStats:
    """Accounting of one feasible-group enumeration."""

    pairs_tested: int = 0
    pairs_feasible: int = 0
    triples_tested: int = 0
    triples_feasible: int = 0
    triples_pruned: int = 0
    groups: int = 0
    truncated: bool = False
    notes: list[str] = field(default_factory=list)


def group_is_feasible(
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    theta_km: float,
    *,
    max_passengers: int | None = None,
) -> bool:
    """Whether every member's detour is within θ on the group's optimal
    (shortest total length) route — the paper's feasibility definition.

    The length-optimal route is the one Theorem 5's exhaustive search
    produces and the taxi is assumed to drive; checking θ on *that*
    route (rather than searching for any θ-respecting route) is what
    filters out groups whose efficient route mistreats a member.
    """
    if not requests:
        raise PackingError("cannot test an empty group")
    if max_passengers is not None and sum(r.passengers for r in requests) > max_passengers:
        return False
    route = feasible_shared_route(requests, oracle)
    assert route is not None  # unconstrained search always finds a route
    return all(route.detour_km(r, oracle) <= theta_km + 1e-9 for r in requests)


def enumerate_feasible_groups(
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    config: DispatchConfig | None = None,
    *,
    max_passengers: int | None = 4,
    assume_metric: bool = True,
    pairing_radius_km: float | None = None,
    pickup_gap: np.ndarray | None = None,
    cache: dict[tuple[int, ...], RideGroup | None] | None = None,
    with_stats: bool = False,
    budget: WorkBudget | None = None,
) -> list[RideGroup] | tuple[list[RideGroup], FeasibilityStats]:
    """All feasible sharing groups of size 2..``config.max_group_size``.

    Group ids are consecutive from 0 in deterministic (member-id) order.
    ``max_passengers`` bounds the group's total party size (a group no
    taxi could seat is pointless to pack); ``None`` disables the bound.

    ``pairing_radius_km`` optionally skips pairs whose pickups are
    farther apart than the radius.  The detour definition alone admits
    degenerate "sequential" shares between arbitrarily distant requests
    (serve one fully, then drive to the other — both detours are zero),
    which are worthless rides for the later passenger and inflate the
    O(|R|³) enumeration; a radius of a few θ keeps every plausibly
    attractive group while restoring city-scale tractability.  ``None``
    reproduces the paper's unpruned enumeration.

    ``pickup_gap`` optionally supplies the pickup-to-pickup distance
    matrix for the **id-sorted** requests (e.g. from the simulation
    frame cache) so the radius prefilter skips recomputing it; ignored
    when no ``pairing_radius_km`` is set.

    ``budget`` charges one node per candidate subset considered; an
    exhausted budget stops the enumeration early and marks
    ``stats.truncated``.  The groups found so far remain valid — unpaired
    requests simply ride as singletons downstream.
    """
    config = config if config is not None else DispatchConfig()
    stats = FeasibilityStats()
    ordered = sorted(requests, key=lambda r: r.request_id)
    groups: list[RideGroup] = []
    feasible_pairs: set[tuple[int, int]] = set()

    def evaluate(members: tuple[PassengerRequest, ...], is_pair: bool) -> None:
        key = tuple(r.request_id for r in members)
        if cache is not None and key in cache:
            cached = cache[key]
            if cached is not None:
                if is_pair:
                    feasible_pairs.add(key)
                groups.append(replace(cached, group_id=len(groups)))
            return
        if is_pair:
            stats.pairs_tested += 1
        else:
            stats.triples_tested += 1
        if group_is_feasible(members, oracle, config.theta_km, max_passengers=max_passengers):
            if is_pair:
                stats.pairs_feasible += 1
                feasible_pairs.add(key)
            else:
                stats.triples_feasible += 1
            group = build_ride_group(len(groups), members, oracle)
            groups.append(group)
            if cache is not None:
                cache[key] = replace(group, group_id=-1)
        elif cache is not None:
            cache[key] = None

    # The radius prefilter inspects every request pair; one batched
    # pickup-to-pickup matrix replaces O(|R|²) scalar oracle calls
    # (exact=True keeps the kept/skipped decisions identical).
    gap = None
    if pairing_radius_km is not None and len(ordered) >= 2 and config.max_group_size >= 2:
        if pickup_gap is not None:
            gap = np.asarray(pickup_gap, dtype=np.float64)
            if gap.shape != (len(ordered), len(ordered)):
                raise PackingError(
                    f"pickup_gap has shape {gap.shape}, "
                    f"expected ({len(ordered)}, {len(ordered)})"
                )
        else:
            pickups = [r.pickup for r in ordered]
            gap = oracle_pairwise(oracle, sources=pickups, targets=pickups, exact=True)

    if config.max_group_size >= 2:
        for (ia, a), (ib, b) in itertools.combinations(enumerate(ordered), 2):
            if budget is not None and not budget.spend():
                stats.truncated = True
                break
            if gap is not None and gap[ia, ib] > pairing_radius_km:
                continue
            evaluate((a, b), is_pair=True)

    if config.max_group_size >= 3 and not stats.truncated:
        for a, b, c in itertools.combinations(ordered, 3):
            if budget is not None and not budget.spend():
                stats.truncated = True
                break
            if assume_metric:
                pairs_ok = (
                    (a.request_id, b.request_id) in feasible_pairs
                    and (a.request_id, c.request_id) in feasible_pairs
                    and (b.request_id, c.request_id) in feasible_pairs
                )
                if not pairs_ok:
                    stats.triples_pruned += 1
                    continue
            evaluate((a, b, c), is_pair=False)

    if stats.truncated:
        stats.notes.append("group enumeration stopped by work budget")
    stats.groups = len(groups)
    if with_stats:
        return groups, stats
    return groups
