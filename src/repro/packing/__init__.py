"""Maximum set packing substrate (Algorithm 3's first stage)."""

from repro.packing.feasibility import (
    FeasibilityStats,
    enumerate_feasible_groups,
    group_is_feasible,
)
from repro.packing.set_packing import (
    PackingResult,
    exact_set_packing,
    greedy_set_packing,
    local_search_packing,
    verify_packing,
)

__all__ = [
    "FeasibilityStats",
    "enumerate_feasible_groups",
    "group_is_feasible",
    "PackingResult",
    "greedy_set_packing",
    "local_search_packing",
    "exact_set_packing",
    "verify_packing",
]
