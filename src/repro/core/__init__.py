"""Core domain types, configuration, and errors."""

from repro.core.config import DispatchConfig, SimulationConfig
from repro.core.errors import (
    ConfigurationError,
    DispatchError,
    ExperimentError,
    MatchingError,
    PackingError,
    PreferenceError,
    ReproError,
    RoutingError,
    SimulationError,
    TraceFormatError,
    UnstableMatchingError,
    WarmStartError,
)
from repro.core.types import (
    Assignment,
    DispatchSchedule,
    PassengerRequest,
    RideGroup,
    RouteStop,
    Taxi,
)

__all__ = [
    "DispatchConfig",
    "SimulationConfig",
    "PassengerRequest",
    "Taxi",
    "RideGroup",
    "RouteStop",
    "Assignment",
    "DispatchSchedule",
    "ReproError",
    "ConfigurationError",
    "TraceFormatError",
    "PreferenceError",
    "MatchingError",
    "UnstableMatchingError",
    "WarmStartError",
    "PackingError",
    "RoutingError",
    "DispatchError",
    "SimulationError",
    "ExperimentError",
]
