"""Domain entities shared by every subsystem.

The paper's notation (Section III-A) maps onto these types as follows:

* ``t_i`` (idle taxi and its location)            → :class:`Taxi`
* ``r_j = (r_j^s, r_j^d)`` (passenger request)     → :class:`PassengerRequest`
* ``c_k`` (subset of requests sharing one taxi)    → :class:`RideGroup`
* ``S`` / ``S(r_j)`` (dispatch schedule / partner) → :class:`DispatchSchedule`

Identifiers are plain ints so entities stay lightweight and hashable;
dispatchers and the simulator index entities by id throughout.
"""

from __future__ import annotations

from collections.abc import Container
from dataclasses import dataclass, field

from repro.geometry.distance import DistanceOracle
from repro.geometry.point import Point

__all__ = [
    "PassengerRequest",
    "Taxi",
    "RideGroup",
    "RouteStop",
    "Assignment",
    "DispatchSchedule",
]


@dataclass(frozen=True, slots=True)
class RouteStop:
    """One stop of a taxi's plan: whose pickup or dropoff, and where."""

    request_id: int
    is_pickup: bool
    point: Point


@dataclass(frozen=True, slots=True)
class PassengerRequest:
    """A passenger request ``r_j = (r_j^s, r_j^d)``.

    Attributes
    ----------
    request_id:
        Unique id ``j``.  Algorithm 2's Rule 2 orders requests by this id.
    pickup:
        ``r_j^s``, the pick-up location.
    dropoff:
        ``r_j^d``, the drop-off location.
    request_time_s:
        When the request was issued, in seconds since simulation start.
        Used to batch requests into frames and to measure dispatch delay.
    passengers:
        Party size; a taxi without enough free seats is mutually
        unacceptable with this request (Section IV-A).
    """

    request_id: int
    pickup: Point
    dropoff: Point
    request_time_s: float = 0.0
    passengers: int = 1

    def trip_distance(self, oracle: DistanceOracle) -> float:
        """``D(r_j^s, r_j^d)``: the revenue-earning trip length in km."""
        return oracle.distance(self.pickup, self.dropoff)

    def __post_init__(self) -> None:
        if self.passengers < 1:
            raise ValueError(f"request {self.request_id} has {self.passengers} passengers")
        if self.request_time_s < 0.0:
            raise ValueError(f"request {self.request_id} has negative request time")


@dataclass(frozen=True, slots=True)
class Taxi:
    """An idle taxi ``t_i`` and its current location.

    Attributes
    ----------
    taxi_id:
        Unique id ``i``.
    location:
        Current position (the dispatch algorithms only see idle taxis'
        positions within the current frame).
    seats:
        Passenger capacity; 4 matches a standard sedan.
    """

    taxi_id: int
    location: Point
    seats: int = 4

    def can_carry(self, request: PassengerRequest) -> bool:
        """Whether this taxi has enough seats for ``request`` alone."""
        return request.passengers <= self.seats

    def __post_init__(self) -> None:
        if self.seats < 1:
            raise ValueError(f"taxi {self.taxi_id} has {self.seats} seats")


@dataclass(frozen=True, slots=True)
class RideGroup:
    """A feasible subset ``c_k`` of requests that share one taxi.

    The group owns its optimal shared route (computed once by the routing
    substrate) so that preference values for stage-two matching do not
    recompute the exhaustive search.

    Attributes
    ----------
    group_id:
        Unique id ``k`` within one dispatch round.
    requests:
        Member requests, ordered by request id for determinism.
    route:
        The optimal pickup-before-dropoff stop sequence as labeled
        :class:`RouteStop` entries.
    route_length_km:
        Total length of ``route`` (first stop to last stop).
    onboard_distance_km:
        ``D_ck(r_j^s, r_j^d)`` per member: distance along the route from
        the member's pickup to its dropoff, keyed by request id.
    pickup_offset_km:
        Distance along the route from the route start to each member's
        pickup, keyed by request id.  ``D_ck(t_i, r_j^s)`` is then
        ``D(t_i, route[0]) + pickup_offset_km[j]``.
    """

    group_id: int
    requests: tuple[PassengerRequest, ...]
    route: tuple[RouteStop, ...]
    route_length_km: float
    onboard_distance_km: dict[int, float] = field(hash=False)
    pickup_offset_km: dict[int, float] = field(hash=False)

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def request_ids(self) -> tuple[int, ...]:
        return tuple(r.request_id for r in self.requests)

    @property
    def total_passengers(self) -> int:
        return sum(r.passengers for r in self.requests)

    @property
    def route_start(self) -> Point:
        """Where a dispatched taxi must drive first."""
        return self.route[0].point

    def total_trip_distance(self, oracle: DistanceOracle) -> float:
        """``sum_j D(r_j^s, r_j^d)``: the pay-off term of the driver score."""
        return sum(r.trip_distance(oracle) for r in self.requests)

    def detour_km(self, request_id: int, oracle: DistanceOracle) -> float:
        """``D_ck(r_j^s, r_j^d) − D(r_j^s, r_j^d)`` for one member."""
        request = next(r for r in self.requests if r.request_id == request_id)
        return self.onboard_distance_km[request_id] - request.trip_distance(oracle)

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a ride group must contain at least one request")
        ids = [r.request_id for r in self.requests]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate request ids in group {self.group_id}: {ids}")


@dataclass(frozen=True, slots=True)
class Assignment:
    """One dispatched unit: a taxi serving one request or one ride group.

    ``stops`` is the complete ordered plan the taxi will drive after
    reaching the first stop from its current location; every request id
    in ``request_ids`` appears exactly once as a pickup and once as a
    dropoff, with the pickup first.
    """

    taxi_id: int
    request_ids: tuple[int, ...]
    stops: tuple[RouteStop, ...]

    def __post_init__(self) -> None:
        if not self.request_ids:
            raise ValueError("an assignment must serve at least one request")
        if len(set(self.request_ids)) != len(self.request_ids):
            raise ValueError("duplicate request ids in assignment")
        pickup_seen: set[int] = set()
        dropoff_seen: set[int] = set()
        for stop in self.stops:
            if stop.is_pickup:
                if stop.request_id in pickup_seen:
                    raise ValueError(f"request {stop.request_id} picked up twice")
                pickup_seen.add(stop.request_id)
            else:
                if stop.request_id not in pickup_seen:
                    raise ValueError(f"request {stop.request_id} dropped off before pickup")
                if stop.request_id in dropoff_seen:
                    raise ValueError(f"request {stop.request_id} dropped off twice")
                dropoff_seen.add(stop.request_id)
        expected = set(self.request_ids)
        if pickup_seen != expected or dropoff_seen != expected:
            raise ValueError("stops must pick up and drop off exactly the assigned requests")

    def pickup_stop_of(self, request_id: int) -> RouteStop:
        """The pickup stop of ``request_id``; raises ``KeyError`` if absent."""
        for stop in self.stops:
            if stop.is_pickup and stop.request_id == request_id:
                return stop
        raise KeyError(request_id)


@dataclass(slots=True)
class DispatchSchedule:
    """A dispatch schedule ``S`` for one frame.

    ``taxi_of`` maps request id → taxi id (the paper's ``S(r_j)``); a
    request absent from the map is unserved in this frame and remains
    queued.  ``assignments`` carries route information for the simulator.
    """

    assignments: list[Assignment] = field(default_factory=list)

    @property
    def taxi_of(self) -> dict[int, int]:
        mapping: dict[int, int] = {}
        for assignment in self.assignments:
            for request_id in assignment.request_ids:
                mapping[request_id] = assignment.taxi_id
        return mapping

    @property
    def served_request_ids(self) -> set[int]:
        return {rid for a in self.assignments for rid in a.request_ids}

    @property
    def dispatched_taxi_ids(self) -> set[int]:
        return {a.taxi_id for a in self.assignments}

    def add(self, assignment: Assignment) -> None:
        self.assignments.append(assignment)

    def validate(self, taxis: list[Taxi], requests: list[PassengerRequest]) -> None:
        """Check structural sanity: no taxi or request appears twice and
        every id refers to a known entity.  Raises ``ValueError``.
        """
        self.validate_ids({t.taxi_id for t in taxis}, {r.request_id for r in requests})

    def validate_ids(self, taxi_ids: Container[int], request_ids: Container[int]) -> None:
        """:meth:`validate` against membership views instead of entity
        lists — the engine passes its live queue mapping so the check
        costs one lookup per assigned id rather than one id-set build
        per frame."""
        seen_taxis: set[int] = set()
        seen_requests: set[int] = set()
        for assignment in self.assignments:
            if assignment.taxi_id not in taxi_ids:
                raise ValueError(f"unknown taxi id {assignment.taxi_id}")
            if assignment.taxi_id in seen_taxis:
                raise ValueError(f"taxi {assignment.taxi_id} dispatched twice")
            seen_taxis.add(assignment.taxi_id)
            for request_id in assignment.request_ids:
                if request_id not in request_ids:
                    raise ValueError(f"unknown request id {request_id}")
                if request_id in seen_requests:
                    raise ValueError(f"request {request_id} served twice")
                seen_requests.add(request_id)
