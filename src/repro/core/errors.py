"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch one base class.  Specific subclasses mark the
subsystem that failed, which keeps error handling explicit at call sites
(e.g. a simulation driver may tolerate a :class:`DispatchError` for one
frame but must never swallow a :class:`ConfigurationError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TraceFormatError",
    "PreferenceError",
    "MatchingError",
    "UnstableMatchingError",
    "EnumerationBudgetError",
    "PackingError",
    "RoutingError",
    "DispatchError",
    "SimulationError",
    "ExperimentError",
    "FrameBudgetExceededError",
    "TransientFaultError",
    "WARM_FALLBACK_REASONS",
    "WARM_FALLBACK_OTHER",
    "JournalError",
    "JournalCorruptionError",
    "JournalSchemaError",
    "CheckpointError",
    "CheckpointSchemaError",
    "ResumeError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent."""


class TraceFormatError(ReproError):
    """A trace file or record does not match the expected schema."""


class PreferenceError(ReproError):
    """A preference table is malformed (unknown ids, missing dummy, ...)."""


class MatchingError(ReproError):
    """A matching routine received invalid input or reached a bad state."""


class UnstableMatchingError(MatchingError):
    """A produced matching violates the stability invariant.

    Raised by verification helpers when asked to *assert* stability; the
    offending blocking pairs are attached for diagnosis.
    """

    def __init__(self, message: str, blocking_pairs: list | None = None):
        super().__init__(message)
        self.blocking_pairs = list(blocking_pairs or [])


class EnumerationBudgetError(MatchingError):
    """A lattice enumeration or break cascade exhausted its work budget.

    Carries the partial lattice collected before the budget ran out
    (``matchings``) and the number of nodes expanded (``nodes``), so
    callers that asked for a hard failure can still salvage the anytime
    result.
    """

    def __init__(self, message: str, *, matchings: list | None = None, nodes: int = 0):
        super().__init__(message)
        self.matchings = list(matchings or [])
        self.nodes = nodes


class WarmStartError(MatchingError):
    """A warm-start seed cannot be safely resumed on the new instance.

    Raised by :mod:`repro.matching.incremental` when the frame delta
    violates a resume precondition (e.g. a held proposer was removed
    while its reviewer stayed, or a preference prefix changed under a
    proposer's cursor).  Callers fall back to a cold solve; the error
    carries the reason for warm-hit-rate telemetry.
    """

    def __init__(self, message: str, *, reason: str = "invalid-seed"):
        super().__init__(message)
        self.reason = reason


#: The closed set of warm-start fallback/invalidation reasons that may
#: appear as ``warm_fallback_<reason>`` / ``warm_invalidation_<reason>``
#: telemetry keys.  Dispatchers map any reason outside this set to
#: :data:`WARM_FALLBACK_OTHER`, so the ``perf_stats()`` key universe is
#: bounded and deterministic across runs regardless of what a future
#: solver raises.
WARM_FALLBACK_REASONS: frozenset[str] = frozenset(
    {
        "invalid-seed",
        "holder-removed",
        "prefix-changed",
        "reviewer-order-changed",
        "held-edge-removed",
        "bad-alpha",
        "duplicate-ids",
        "id-overflow",
        "audit-divergence",
        "external",
    }
)

#: Telemetry bucket for warm-start reasons outside the enumerated set.
WARM_FALLBACK_OTHER = "other"


class PackingError(ReproError):
    """Set-packing input is invalid (e.g. an empty candidate subset)."""


class RoutingError(ReproError):
    """Shared-route computation received an infeasible or oversized group."""


class DispatchError(ReproError):
    """A dispatcher produced an invalid decision for the current frame."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment runner was misconfigured or referenced unknown data."""


class FrameBudgetExceededError(ReproError):
    """A dispatcher's cooperative checkpoint found the frame deadline past.

    The simulation engine catches this and walks the degradation ladder;
    it escapes to users only when they run a budgeted dispatcher outside
    the engine.
    """

    def __init__(self, message: str, *, elapsed_s: float = 0.0, budget_s: float = 0.0):
        super().__init__(message)
        self.elapsed_s = elapsed_s
        self.budget_s = budget_s


class TransientFaultError(ReproError):
    """An injected or observed transient infrastructure fault.

    Raised by :class:`repro.resilience.faults.FaultyOracle` (and
    recognisable to retry logic in the engine and experiment runners);
    by definition a retry of the same operation may succeed.
    """


class JournalError(ReproError):
    """Base class for crash-recovery journal failures."""


class JournalCorruptionError(JournalError):
    """A journal record failed its checksum or structural validation.

    Raised for any damaged record that is *not* the torn final line of
    the file: a truncated tail is the expected signature of a crash
    mid-append and is tolerated (with a warning), while corruption
    anywhere else means the artifact cannot be trusted and recovery must
    refuse to proceed.
    """


class JournalSchemaError(JournalError):
    """A journal was written under an unknown schema version.

    Journals are replayed to verify recovered state; replaying records
    whose semantics this build does not know would silently validate the
    wrong thing, so version skew is a hard refusal, never a warning.
    """


class CheckpointError(ReproError):
    """A checkpoint snapshot could not be written or read."""


class CheckpointSchemaError(CheckpointError):
    """A snapshot was written under an unknown schema version."""


class ResumeError(ReproError):
    """Crash recovery could not reconstruct a trustworthy run state.

    Raised when resume preconditions fail (missing/mismatched workload,
    unsupported configuration) or when the replayed frames diverge from
    the journaled digests — the one signal that the recovered state is
    *not* bit-identical to the uninterrupted run.
    """
