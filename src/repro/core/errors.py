"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch one base class.  Specific subclasses mark the
subsystem that failed, which keeps error handling explicit at call sites
(e.g. a simulation driver may tolerate a :class:`DispatchError` for one
frame but must never swallow a :class:`ConfigurationError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TraceFormatError",
    "PreferenceError",
    "MatchingError",
    "UnstableMatchingError",
    "PackingError",
    "RoutingError",
    "DispatchError",
    "SimulationError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent."""


class TraceFormatError(ReproError):
    """A trace file or record does not match the expected schema."""


class PreferenceError(ReproError):
    """A preference table is malformed (unknown ids, missing dummy, ...)."""


class MatchingError(ReproError):
    """A matching routine received invalid input or reached a bad state."""


class UnstableMatchingError(MatchingError):
    """A produced matching violates the stability invariant.

    Raised by verification helpers when asked to *assert* stability; the
    offending blocking pairs are attached for diagnosis.
    """

    def __init__(self, message: str, blocking_pairs: list | None = None):
        super().__init__(message)
        self.blocking_pairs = list(blocking_pairs or [])


class PackingError(ReproError):
    """Set-packing input is invalid (e.g. an empty candidate subset)."""


class RoutingError(ReproError):
    """Shared-route computation received an infeasible or oversized group."""


class DispatchError(ReproError):
    """A dispatcher produced an invalid decision for the current frame."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment runner was misconfigured or referenced unknown data."""
