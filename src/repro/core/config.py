"""Configuration objects for dispatching and simulation.

Defaults follow the paper's experimental settings (Section VI-A/B):
α = 1, β = 1, θ = 5 km, one-minute frames, taxi speed 20 km/h, groups of
at most three requests sharing a taxi.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

__all__ = ["DispatchConfig", "SimulationConfig"]


@dataclass(frozen=True, slots=True)
class DispatchConfig:
    """Parameters of the preference model and sharing model.

    Attributes
    ----------
    alpha:
        Driver trade-off coefficient: the driver score of serving ``r_j``
        is ``D(t_i, r_j^s) − α·D(r_j^s, r_j^d)`` (smaller is better).
    beta:
        Passenger sharing coefficient: the passenger score of a shared
        ride is ``D_ck(t_i, r_j^s) + β·[detour]``.
    theta_km:
        Sharing feasibility threshold θ: a group is feasible only if every
        member's detour is at most θ kilometres.
    max_group_size:
        Maximum requests per shared taxi (the paper observes ≤ 3 in
        practice and relies on it for exhaustive routing).
    passenger_threshold_km:
        Dummy position in a passenger's preference order: taxis farther
        than this are less preferred than no dispatch.  ``inf`` disables
        the threshold (every taxi is acceptable).
    taxi_threshold_km:
        Dummy position in a taxi's preference order: requests whose driver
        score exceeds this are less preferred than no service.  With
        α = 1 a score below 0 means the fare out-earns the deadhead; the
        default 0.0 encodes "only profitable rides are acceptable is too
        strict", so we default to ``inf`` and let experiments set it.
    """

    alpha: float = 1.0
    beta: float = 1.0
    theta_km: float = 5.0
    max_group_size: int = 3
    passenger_threshold_km: float = math.inf
    taxi_threshold_km: float = math.inf

    def __post_init__(self) -> None:
        if self.alpha < 0.0:
            raise ConfigurationError(f"alpha must be non-negative, got {self.alpha}")
        if self.beta < 0.0:
            raise ConfigurationError(f"beta must be non-negative, got {self.beta}")
        if self.theta_km < 0.0:
            raise ConfigurationError(f"theta_km must be non-negative, got {self.theta_km}")
        if not 1 <= self.max_group_size <= 4:
            raise ConfigurationError(
                f"max_group_size must be in [1, 4] (exhaustive routing), got {self.max_group_size}"
            )
        if self.passenger_threshold_km <= 0.0:
            raise ConfigurationError("passenger_threshold_km must be positive")


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Parameters of the discrete-time simulation engine.

    Attributes
    ----------
    frame_length_s:
        Batching period; the paper schedules on one-minute frames.
    taxi_speed_kmh:
        Constant taxi speed (the paper uses 20 km/h, citing [24]).
    passenger_patience_s:
        How long an unserved request stays in the queue before it is
        abandoned.  ``inf`` keeps requests queued forever.
    horizon_s:
        Total simulated time; requests beyond the horizon are ignored.
    dispatch:
        The preference-model parameters used by dispatchers.
    """

    frame_length_s: float = 60.0
    taxi_speed_kmh: float = 20.0
    passenger_patience_s: float = math.inf
    horizon_s: float = 24.0 * 3600.0
    dispatch: DispatchConfig = field(default_factory=DispatchConfig)

    def __post_init__(self) -> None:
        if self.frame_length_s <= 0.0:
            raise ConfigurationError(f"frame_length_s must be positive, got {self.frame_length_s}")
        if self.taxi_speed_kmh <= 0.0:
            raise ConfigurationError(f"taxi_speed_kmh must be positive, got {self.taxi_speed_kmh}")
        if self.passenger_patience_s <= 0.0:
            raise ConfigurationError("passenger_patience_s must be positive")
        if self.horizon_s <= 0.0:
            raise ConfigurationError(f"horizon_s must be positive, got {self.horizon_s}")

    @property
    def taxi_speed_kms(self) -> float:
        """Taxi speed in kilometres per second."""
        return self.taxi_speed_kmh / 3600.0

    def travel_time_s(self, distance_km: float) -> float:
        """Seconds needed to drive ``distance_km`` at the configured speed."""
        if distance_km < 0.0:
            raise ValueError(f"distance must be non-negative, got {distance_km}")
        return distance_km / self.taxi_speed_kms
