"""Brute-force Shortest Hamiltonian Path (Theorem 5's hardness object).

The paper reduces shared-ride routing from SHPP in weighted directed
graphs.  This module provides the exact (exponential) solver used by the
tests to certify :func:`repro.routing.shared_route.optimal_shared_route`:
the optimal shared route of a group equals the SHPP over its stops
restricted to precedence-feasible orders, and on instances without
precedence conflicts the two coincide exactly.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence

__all__ = ["shortest_hamiltonian_path", "held_karp_path"]


def shortest_hamiltonian_path(weights: Sequence[Sequence[float]]) -> tuple[float, tuple[int, ...]]:
    """Exact SHPP by permutation enumeration (n ≤ 9 recommended).

    ``weights[u][v]`` is the directed edge weight; ``inf`` marks a
    missing edge.  Returns (length, node order); an infeasible instance
    returns ``(inf, ())``.
    """
    n = len(weights)
    if n == 0:
        return (0.0, ())
    if any(len(row) != n for row in weights):
        raise ValueError("weight matrix must be square")
    best_length = math.inf
    best_order: tuple[int, ...] = ()
    for order in itertools.permutations(range(n)):
        length = 0.0
        for u, v in zip(order, order[1:]):
            w = weights[u][v]
            if not math.isfinite(w):
                length = math.inf
                break
            length += w
        if length < best_length:
            best_length = length
            best_order = order
    return (best_length, best_order if math.isfinite(best_length) else ())


def held_karp_path(weights: Sequence[Sequence[float]]) -> float:
    """SHPP length via Held–Karp dynamic programming, O(n²·2ⁿ).

    Faster than enumeration for n up to ~16; used to cross-check the
    brute-force solver in tests.
    """
    n = len(weights)
    if n == 0:
        return 0.0
    if n == 1:
        return 0.0
    full = (1 << n) - 1
    # best[mask][v] = shortest path visiting exactly `mask`, ending at v.
    best = [[math.inf] * n for _ in range(1 << n)]
    for v in range(n):
        best[1 << v][v] = 0.0
    for mask in range(1 << n):
        for v in range(n):
            current = best[mask][v]
            if not math.isfinite(current) or not mask & (1 << v):
                continue
            for u in range(n):
                if mask & (1 << u):
                    continue
                w = weights[v][u]
                if not math.isfinite(w):
                    continue
                nxt = mask | (1 << u)
                if current + w < best[nxt][u]:
                    best[nxt][u] = current + w
    return min(best[full])
