"""Optimal shared-ride routes by exhaustive search.

Theorem 5 proves that routing a shared taxi — a directed shortest path
visiting every member's pickup before its dropoff — is NP-hard in
general.  The paper then observes that real shared rides carry at most
three requests, so the route can be searched exhaustively: for
``|c_k| = 3`` there are ``6!/(2·2·2) = 90`` feasible stop sequences.

:func:`optimal_shared_route` enumerates exactly the precedence-feasible
interleavings (not all permutations) with a recursive generator, scores
each by total length, and returns a :class:`SharedRoute` carrying the
per-member quantities the sharing preference model needs:

* ``pickup_offset_km[j]`` — distance from the route start to ``r_j``'s
  pickup, so ``D_ck(t_i, r_j^s) = D(t_i, route[0]) + offset``;
* ``onboard_km[j]`` — ``D_ck(r_j^s, r_j^d)``, the member's distance along
  the route, whose excess over the direct trip is the sharing detour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro.core.errors import RoutingError
from repro.core.types import PassengerRequest, RideGroup, RouteStop
from repro.geometry.distance import DistanceOracle
from repro.geometry.point import Point

__all__ = [
    "RouteStop",
    "SharedRoute",
    "feasible_shared_route",
    "optimal_shared_route",
    "build_ride_group",
    "count_feasible_sequences",
]

MAX_EXHAUSTIVE_GROUP = 4


@dataclass(frozen=True, slots=True)
class SharedRoute:
    """An optimal stop sequence for one ride group."""

    stops: tuple[RouteStop, ...]
    length_km: float
    pickup_offset_km: dict[int, float]
    onboard_km: dict[int, float]

    @property
    def start(self) -> Point:
        return self.stops[0].point

    @property
    def end(self) -> Point:
        return self.stops[-1].point

    def detour_km(self, request: PassengerRequest, oracle: DistanceOracle) -> float:
        """The member's extra on-board distance caused by sharing."""
        return self.onboard_km[request.request_id] - request.trip_distance(oracle)


_SEQUENCE_CACHE: dict[int, tuple[tuple[tuple[int, bool], ...], ...]] = {}


def _sequences_for(n: int) -> tuple[tuple[tuple[int, bool], ...], ...]:
    """Memoized precedence-feasible stop orders for an ``n``-member group."""
    cached = _SEQUENCE_CACHE.get(n)
    if cached is None:
        cached = tuple(_feasible_sequences(n))
        _SEQUENCE_CACHE[n] = cached
    return cached


def _feasible_sequences(n: int) -> Iterator[tuple[tuple[int, bool], ...]]:
    """All stop orders where request ``i``'s pickup precedes its dropoff.

    Stops are ``(member_index, is_pickup)``; generated recursively by
    extending with any un-picked pickup or any picked-but-not-dropped
    dropoff, which enumerates exactly the ``(2n)!/2^n`` valid orders.
    """
    sequence: list[tuple[int, bool]] = []
    picked = [False] * n
    dropped = [False] * n

    def extend() -> Iterator[tuple[tuple[int, bool], ...]]:
        if len(sequence) == 2 * n:
            yield tuple(sequence)
            return
        for i in range(n):
            if not picked[i]:
                picked[i] = True
                sequence.append((i, True))
                yield from extend()
                sequence.pop()
                picked[i] = False
            elif not dropped[i]:
                dropped[i] = True
                sequence.append((i, False))
                yield from extend()
                sequence.pop()
                dropped[i] = False

    yield from extend()


def count_feasible_sequences(n: int) -> int:
    """``(2n)!/2^n``: the count the paper quotes (90 for n = 3)."""
    return math.factorial(2 * n) // (2**n)


def feasible_shared_route(
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    *,
    start: Point | None = None,
    max_detour_km: float | None = None,
) -> SharedRoute | None:
    """The shortest precedence-feasible route, or ``None`` if constrained
    away.

    Parameters
    ----------
    requests:
        The group members (1 to ``MAX_EXHAUSTIVE_GROUP`` of them).
    oracle:
        Distance oracle for leg lengths.
    start:
        Optional taxi position: when given, the objective includes the
        leg from ``start`` to the first stop (stage-two refinement);
        when omitted the route is taxi-independent, as in the paper's
        packing stage.
    max_detour_km:
        When given, only sequences keeping **every** member's detour
        (on-board distance minus direct trip) within this bound compete;
        the result is the shortest θ-respecting route, and ``None``
        means the group cannot share within θ.  This is the route a
        dispatched taxi actually drives, so committed rides always honor
        the bound the passengers agreed to.  For metric oracles this
        definition makes sharing feasibility downward-closed (deleting a
        member's stops never lengthens the others' on-board distances),
        which the enumeration pruning relies on.

    Ties between equally short sequences break toward the
    lexicographically smallest ``(request_id, is_pickup)`` sequence, so
    results are deterministic.
    """
    n = len(requests)
    if n == 0:
        raise RoutingError("cannot route an empty group")
    if n > MAX_EXHAUSTIVE_GROUP:
        raise RoutingError(
            f"exhaustive routing supports groups of at most {MAX_EXHAUSTIVE_GROUP}, got {n}"
        )
    ids = [r.request_id for r in requests]
    if len(set(ids)) != n:
        raise RoutingError(f"duplicate request ids in group: {ids}")

    points: list[tuple[Point, Point]] = [(r.pickup, r.dropoff) for r in requests]

    # With at most 8 stops, memoizing the leg distances once beats
    # re-querying the oracle across the up-to-2520 candidate sequences.
    stop_points: list[Point] = [p for pair in points for p in pair]
    leg: dict[tuple[int, int], float] = {}
    for a in range(len(stop_points)):
        for b in range(len(stop_points)):
            if a != b:
                leg[(a, b)] = oracle.distance(stop_points[a], stop_points[b])
    start_leg: list[float] | None = None
    if start is not None:
        start_leg = [oracle.distance(start, p) for p in stop_points]
    direct = [leg[(2 * m, 2 * m + 1)] for m in range(n)]

    def stop_index(member: int, is_pickup: bool) -> int:
        return 2 * member + (0 if is_pickup else 1)

    best_length = math.inf
    best_sequence: tuple[tuple[int, bool], ...] | None = None
    best_key: tuple | None = None
    pickup_cum = [0.0] * n
    for sequence in _sequences_for(n):
        first = stop_index(*sequence[0])
        approach = 0.0 if start_leg is None else start_leg[first]
        cumulative = 0.0
        previous = first
        pickup_cum[sequence[0][0]] = 0.0
        detour_ok = True
        for member, is_pickup in sequence[1:]:
            index = stop_index(member, is_pickup)
            cumulative += leg[(previous, index)]
            previous = index
            if is_pickup:
                pickup_cum[member] = cumulative
            elif max_detour_km is not None:
                onboard = cumulative - pickup_cum[member]
                if onboard - direct[member] > max_detour_km + 1e-9:
                    detour_ok = False
                    break
        if not detour_ok:
            continue
        length = approach + cumulative
        key = tuple((ids[m], not p) for m, p in sequence)
        if length < best_length - 1e-12 or (
            abs(length - best_length) <= 1e-12 and (best_key is None or key < best_key)
        ):
            best_length = length
            best_sequence = sequence
            best_key = key

    if best_sequence is None:
        return None

    stops: list[RouteStop] = []
    cumulative = 0.0
    offsets_at: list[float] = []
    previous = None
    for member, is_pickup in best_sequence:
        point = points[member][0] if is_pickup else points[member][1]
        if previous is not None:
            cumulative += oracle.distance(previous, point)
        offsets_at.append(cumulative)
        stops.append(RouteStop(request_id=ids[member], is_pickup=is_pickup, point=point))
        previous = point

    pickup_offset: dict[int, float] = {}
    onboard: dict[int, float] = {}
    for stop, offset in zip(stops, offsets_at):
        if stop.is_pickup:
            pickup_offset[stop.request_id] = offset
        else:
            onboard[stop.request_id] = offset - pickup_offset[stop.request_id]

    route_length = offsets_at[-1] if start is None else best_length
    return SharedRoute(
        stops=tuple(stops),
        length_km=route_length,
        pickup_offset_km=pickup_offset,
        onboard_km=onboard,
    )


def optimal_shared_route(
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    *,
    start: Point | None = None,
    max_detour_km: float | None = None,
) -> SharedRoute:
    """Like :func:`feasible_shared_route` but raising on infeasibility."""
    route = feasible_shared_route(
        requests, oracle, start=start, max_detour_km=max_detour_km
    )
    if route is None:
        raise RoutingError(
            f"no route keeps every member's detour within {max_detour_km} km"
        )
    return route


def build_ride_group(
    group_id: int,
    requests: Sequence[PassengerRequest],
    oracle: DistanceOracle,
    *,
    max_detour_km: float | None = None,
) -> RideGroup:
    """A :class:`RideGroup` carrying its optimal taxi-independent route."""
    ordered = tuple(sorted(requests, key=lambda r: r.request_id))
    route = optimal_shared_route(ordered, oracle, max_detour_km=max_detour_km)
    return RideGroup(
        group_id=group_id,
        requests=ordered,
        route=route.stops,
        route_length_km=route.length_km,
        onboard_distance_km=dict(route.onboard_km),
        pickup_offset_km=dict(route.pickup_offset_km),
    )
