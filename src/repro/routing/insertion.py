"""Route insertion for the SARP baseline.

Li et al. [8] route passengers TSP-style and then insert new stops into
the existing route with minimum extra travel distance.  We reproduce the
insertion primitive: given a taxi's current stop sequence, find the pair
of positions (pickup at ``i``, dropoff at ``j ≥ i``) that minimizes the
route-length increase while keeping every existing stop's order intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.errors import RoutingError
from repro.core.types import PassengerRequest, RouteStop
from repro.geometry.distance import DistanceOracle
from repro.geometry.point import Point

__all__ = ["InsertionResult", "best_insertion", "route_length"]


@dataclass(frozen=True, slots=True)
class InsertionResult:
    """The cheapest insertion of one request into an existing route."""

    stops: tuple[RouteStop, ...]
    added_km: float
    pickup_index: int
    dropoff_index: int


def route_length(stops: Sequence[RouteStop], oracle: DistanceOracle, start: Point | None = None) -> float:
    """Total length of a stop sequence, optionally from a start point."""
    length = 0.0
    previous = start
    for stop in stops:
        if previous is not None:
            length += oracle.distance(previous, stop.point)
        previous = stop.point
    return length


def best_insertion(
    stops: Sequence[RouteStop],
    request: PassengerRequest,
    oracle: DistanceOracle,
    *,
    start: Point | None = None,
) -> InsertionResult:
    """Insert ``request``'s pickup and dropoff at minimum extra distance.

    ``start`` anchors the first leg (the taxi's current position); when
    provided, inserting before the first stop correctly pays the detour
    from ``start``.  Existing stops keep their relative order, so the
    cost is O(k²) leg evaluations for a k-stop route.
    """
    if any(stop.request_id == request.request_id for stop in stops):
        raise RoutingError(f"request {request.request_id} is already on the route")

    base = route_length(stops, oracle, start=start)
    pickup = RouteStop(request_id=request.request_id, is_pickup=True, point=request.pickup)
    dropoff = RouteStop(request_id=request.request_id, is_pickup=False, point=request.dropoff)

    best: InsertionResult | None = None
    n = len(stops)
    for i in range(n + 1):
        with_pickup = list(stops[:i]) + [pickup] + list(stops[i:])
        for j in range(i + 1, n + 2):
            candidate = with_pickup[:j] + [dropoff] + with_pickup[j:]
            added = route_length(candidate, oracle, start=start) - base
            if best is None or added < best.added_km - 1e-12:
                best = InsertionResult(
                    stops=tuple(candidate), added_km=added, pickup_index=i, dropoff_index=j
                )
    assert best is not None
    return best
