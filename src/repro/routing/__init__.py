"""Shared-ride routing substrate."""

from repro.routing.hamiltonian import held_karp_path, shortest_hamiltonian_path
from repro.routing.insertion import InsertionResult, best_insertion, route_length
from repro.routing.shared_route import (
    MAX_EXHAUSTIVE_GROUP,
    RouteStop,
    SharedRoute,
    build_ride_group,
    count_feasible_sequences,
    feasible_shared_route,
    optimal_shared_route,
)

__all__ = [
    "RouteStop",
    "SharedRoute",
    "optimal_shared_route",
    "feasible_shared_route",
    "build_ride_group",
    "count_feasible_sequences",
    "MAX_EXHAUSTIVE_GROUP",
    "InsertionResult",
    "best_insertion",
    "route_length",
    "shortest_hamiltonian_path",
    "held_karp_path",
]
