"""Rendering the simulator's per-frame telemetry.

The frame-stats series (queue length, idle taxis, dispatches,
abandonments) is the quickest way to see *why* a run produced its
metrics: a queue ramp through the morning peak means patience-bound
delays; a flat near-zero queue means the paper's light-load regime.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.report import format_table
from repro.simulation.engine import SimulationResult
from repro.simulation.events import FrameStats

__all__ = ["downsample_frames", "timeline_table", "load_profile"]


def downsample_frames(frames: Sequence[FrameStats], buckets: int = 24) -> list[dict[str, float]]:
    """Aggregate frame stats into ``buckets`` equal time windows.

    Queue length and idle taxis are averaged over each window;
    dispatches and abandonments are summed.
    """
    if buckets < 1:
        raise ValueError(f"buckets must be positive, got {buckets}")
    if not frames:
        return []
    start = frames[0].time_s
    end = frames[-1].time_s
    width = max((end - start) / buckets, 1e-9)
    grouped: list[list[FrameStats]] = [[] for _ in range(buckets)]
    for frame in frames:
        index = min(int((frame.time_s - start) / width), buckets - 1)
        grouped[index].append(frame)
    result = []
    for index, group in enumerate(grouped):
        if not group:
            continue
        result.append(
            {
                "window_start_s": start + index * width,
                "mean_queue": sum(f.queue_length for f in group) / len(group),
                "mean_idle": sum(f.idle_taxis for f in group) / len(group),
                "dispatched": float(sum(f.dispatched_requests for f in group)),
                "abandoned": float(sum(f.abandoned for f in group)),
            }
        )
    return result


def timeline_table(result: SimulationResult, buckets: int = 24) -> str:
    """A printable load timeline for one simulation result."""
    rows = [
        [
            f"{int(window['window_start_s'] // 3600):02d}:{int(window['window_start_s'] % 3600 // 60):02d}",
            window["mean_queue"],
            window["mean_idle"],
            int(window["dispatched"]),
            int(window["abandoned"]),
        ]
        for window in downsample_frames(result.frame_stats, buckets)
    ]
    header = f"load timeline — {result.dispatcher_name}"
    return header + "\n" + format_table(
        ["window", "mean_queue", "mean_idle", "dispatched", "abandoned"], rows
    )


def load_profile(result: SimulationResult) -> dict[str, float]:
    """Scalar load indicators for one run.

    ``peak_queue`` and ``mean_queue`` diagnose saturation;
    ``abandonment_rate`` is the fraction of requests lost to patience.
    """
    frames = result.frame_stats
    if not frames:
        return {"peak_queue": 0.0, "mean_queue": 0.0, "abandonment_rate": 0.0}
    total_requests = len(result.outcomes)
    abandoned = sum(f.abandoned for f in frames)
    return {
        "peak_queue": float(max(f.queue_length for f in frames)),
        "mean_queue": sum(f.queue_length for f in frames) / len(frames),
        "abandonment_rate": abandoned / total_requests if total_requests else 0.0,
    }
