"""Multi-seed statistics: means, confidence intervals, and robust
orderings.

Single-seed comparisons can flip on workload noise; these helpers rerun
an experiment across seeds and report Student-t confidence intervals so
figure-level claims ("NSTD's taxi dissatisfaction beats Greedy's") can
be asserted with error bars, the way the reproduction benches use them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

from scipy import stats as scipy_stats

__all__ = ["MetricSummary", "summarize_samples", "replicate", "ordering_consistency"]


@dataclass(frozen=True, slots=True)
class MetricSummary:
    """Mean and a two-sided confidence interval of one metric."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def overlaps(self, other: "MetricSummary") -> bool:
        """Whether the two confidence intervals intersect."""
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


def summarize_samples(samples: Sequence[float], confidence: float = 0.95) -> MetricSummary:
    """A Student-t confidence interval over independent samples."""
    if not samples:
        raise ValueError("cannot summarize zero samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return MetricSummary(
            mean=mean, std=0.0, ci_low=mean, ci_high=mean, n=1, confidence=confidence
        )
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    std = math.sqrt(variance)
    t_value = float(scipy_stats.t.ppf((1.0 + confidence) / 2.0, df=n - 1))
    half = t_value * std / math.sqrt(n)
    return MetricSummary(
        mean=mean, std=std, ci_low=mean - half, ci_high=mean + half, n=n, confidence=confidence
    )


def replicate(
    run: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> dict[str, MetricSummary]:
    """Run ``run(seed)`` for every seed and summarize each metric.

    ``run`` must return the same metric keys for every seed.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    collected: dict[str, list[float]] = {}
    for seed in seeds:
        metrics = run(seed)
        if not collected:
            collected = {key: [] for key in metrics}
        if set(metrics) != set(collected):
            raise ValueError("run() returned inconsistent metric keys across seeds")
        for key, value in metrics.items():
            collected[key].append(float(value))
    return {key: summarize_samples(values, confidence) for key, values in collected.items()}


def ordering_consistency(
    per_seed_values: Mapping[str, Sequence[float]],
    *,
    smaller_is_better: bool = True,
) -> dict[str, float]:
    """How often each label wins across seeds.

    ``per_seed_values[label][i]`` is label's metric on seed ``i``; the
    result maps each label to the fraction of seeds where it was the
    (strict) best.  Benchmarks assert headline orderings hold on a
    majority of seeds rather than on one lucky draw.
    """
    labels = list(per_seed_values)
    if not labels:
        return {}
    lengths = {len(v) for v in per_seed_values.values()}
    if len(lengths) != 1:
        raise ValueError("all labels need the same number of seeds")
    (n_seeds,) = lengths
    if n_seeds == 0:
        raise ValueError("need at least one seed")
    wins = {label: 0 for label in labels}
    for index in range(n_seeds):
        values = {label: per_seed_values[label][index] for label in labels}
        best = min(values.values()) if smaller_is_better else max(values.values())
        winners = [label for label, value in values.items() if value == best]
        if len(winners) == 1:
            wins[winners[0]] += 1
    return {label: count / n_seeds for label, count in wins.items()}
