"""Empirical CDFs — the paper's Figs. 4, 5, 8 and 9 are CDF plots."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

__all__ = ["EmpiricalCDF", "empirical_cdf"]


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical cumulative distribution over observed values."""

    values: np.ndarray  # sorted ascending

    @property
    def n(self) -> int:
        return int(self.values.size)

    def at(self, x: float) -> float:
        """``P(V ≤ x)``."""
        if self.n == 0:
            return 0.0
        return float(np.searchsorted(self.values, x, side="right")) / self.n

    def quantile(self, q: float) -> float:
        """The smallest value with CDF ≥ q (0 < q ≤ 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if self.n == 0:
            raise ValueError("empty CDF has no quantiles")
        index = min(self.n - 1, max(0, int(np.ceil(q * self.n)) - 1))
        return float(self.values[index])

    def sample_points(self, grid: Sequence[float]) -> list[tuple[float, float]]:
        """``(x, F(x))`` pairs over ``grid`` — one plotted series."""
        return [(float(x), self.at(float(x))) for x in grid]

    @property
    def mean(self) -> float:
        return float(self.values.mean()) if self.n else 0.0

    @property
    def median(self) -> float:
        return self.quantile(0.5)


def empirical_cdf(values: Sequence[float]) -> EmpiricalCDF:
    """Build an :class:`EmpiricalCDF` from raw observations."""
    array = np.asarray(sorted(values), dtype=float)
    return EmpiricalCDF(values=array)
