"""Plain-text rendering of experiment results.

The benchmark harness prints the same series the paper plots; these
helpers format them as aligned tables so benchmark output is directly
comparable to the figures.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.analysis.cdf import EmpiricalCDF

__all__ = ["format_table", "format_cdf_table", "format_summary_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, float_format: str = "{:.3f}"
) -> str:
    """A fixed-width table; floats use ``float_format``."""
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append(
            [float_format.format(v) if isinstance(v, float) else str(v) for v in row]
        )
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(rendered):
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def format_cdf_table(
    series: Mapping[str, EmpiricalCDF], grid: Sequence[float], *, value_label: str = "x"
) -> str:
    """One row per grid point, one column per algorithm (a CDF figure)."""
    headers = [value_label] + list(series)
    rows: list[list[object]] = []
    for x in grid:
        rows.append([float(x)] + [cdf.at(float(x)) for cdf in series.values()])
    return format_table(headers, rows)


def format_summary_table(summaries: Mapping[str, Mapping[str, float]]) -> str:
    """One row per algorithm over its summary metrics."""
    if not summaries:
        return "(no results)"
    metric_names = list(next(iter(summaries.values())))
    headers = ["algorithm"] + metric_names
    rows = [[label] + [summary[m] for m in metric_names] for label, summary in summaries.items()]
    return format_table(headers, rows)
