"""Analysis: CDFs, aggregation, and text reports."""

from repro.analysis.aggregate import HourlyStats, hourly_averages, summarize_by_label
from repro.analysis.cdf import EmpiricalCDF, empirical_cdf
from repro.analysis.fairness import driver_income_report, gini, jain_index
from repro.analysis.report import format_cdf_table, format_summary_table, format_table
from repro.analysis.stats import (
    MetricSummary,
    ordering_consistency,
    replicate,
    summarize_samples,
)
from repro.analysis.timeline import downsample_frames, load_profile, timeline_table

__all__ = [
    "EmpiricalCDF",
    "empirical_cdf",
    "hourly_averages",
    "HourlyStats",
    "summarize_by_label",
    "format_table",
    "format_cdf_table",
    "format_summary_table",
    "MetricSummary",
    "summarize_samples",
    "replicate",
    "ordering_consistency",
    "gini",
    "jain_index",
    "driver_income_report",
    "downsample_frames",
    "timeline_table",
    "load_profile",
]
