"""Driver-income fairness metrics.

The paper's whole premise is that O2O drivers are independent agents
whose interests the dispatcher must respect.  Beyond the per-ride taxi
dissatisfaction the paper plots, a fleet-level question follows
naturally: how *evenly* does a dispatch policy spread income over
drivers?  These helpers compute standard inequality measures over the
simulator's per-taxi statistics.

* :func:`gini` — the Gini coefficient (0 = perfectly even, →1 = one
  driver takes everything);
* :func:`jain_index` — Jain's fairness index (1 = even, 1/n = one
  winner);
* :func:`driver_income_report` — per-algorithm income fairness table
  data from simulation results.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.simulation.engine import SimulationResult

__all__ = ["gini", "jain_index", "driver_income_report"]


def gini(values: Sequence[float]) -> float:
    """The Gini coefficient of non-negative ``values``.

    Uses the sorted-rank formula ``G = (2·Σ i·x_(i) / (n·Σx)) − (n+1)/n``
    with 1-based ranks.  All-zero input returns 0 (perfect equality of
    nothing).
    """
    if not values:
        raise ValueError("cannot compute the Gini coefficient of no values")
    if any(v < 0 for v in values):
        raise ValueError("Gini coefficient requires non-negative values")
    ordered = sorted(values)
    n = len(ordered)
    total = sum(ordered)
    if total <= 0.0:  # all-zero input (values are validated non-negative)
        return 0.0
    weighted = sum(rank * value for rank, value in enumerate(ordered, start=1))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)``; 1 means perfectly even."""
    if not values:
        raise ValueError("cannot compute Jain's index of no values")
    if any(v < 0 for v in values):
        raise ValueError("Jain's index requires non-negative values")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares <= 0.0:  # all-zero input (values are validated non-negative)
        return 1.0
    return (total * total) / (len(values) * squares)


def driver_income_report(
    results: Mapping[str, SimulationResult],
) -> dict[str, dict[str, float]]:
    """Income-fairness summary per algorithm.

    Keys per algorithm: mean and Gini of per-driver revenue, Jain index,
    mean paid-distance ratio, and the share of drivers who earned
    nothing all day.
    """
    report: dict[str, dict[str, float]] = {}
    for name, result in results.items():
        stats = list(result.taxi_stats.values())
        if not stats:
            report[name] = {
                "mean_revenue_km": 0.0,
                "revenue_gini": 0.0,
                "revenue_jain": 1.0,
                "mean_paid_ratio": 0.0,
                "idle_driver_share": 0.0,
            }
            continue
        revenues = [s.revenue_km for s in stats]
        report[name] = {
            "mean_revenue_km": sum(revenues) / len(revenues),
            "revenue_gini": gini(revenues),
            "revenue_jain": jain_index(revenues),
            "mean_paid_ratio": sum(s.paid_ratio for s in stats) / len(stats),
            "idle_driver_share": sum(1 for r in revenues if r <= 0.0) / len(revenues),
        }
    return report
