"""Aggregations behind Figs. 6 and 7: averages by fleet size and clock hour."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.simulation.engine import SimulationResult

__all__ = ["hourly_averages", "HourlyStats", "summarize_by_label"]


class HourlyStats(dict):
    """hour (0–23) → dict of metric means for that hour's requests."""


def hourly_averages(result: SimulationResult) -> HourlyStats:
    """Per-clock-hour means of the three paper metrics (Fig. 7).

    A request belongs to the hour it was *issued* in; taxi
    dissatisfaction is attributed through the assignment's frame time.
    """
    delays: dict[int, list[float]] = defaultdict(list)
    pd: dict[int, list[float]] = defaultdict(list)
    for outcome in result.outcomes:
        hour = int(outcome.request_time_s // 3600) % 24
        if outcome.dispatch_delay_min is not None:
            delays[hour].append(outcome.dispatch_delay_min)
        if outcome.passenger_dissatisfaction is not None:
            pd[hour].append(outcome.passenger_dissatisfaction)
    td: dict[int, list[float]] = defaultdict(list)
    for record in result.assignments:
        hour = int(record.frame_time_s // 3600) % 24
        td[hour].append(record.taxi_dissatisfaction)

    stats = HourlyStats()
    for hour in range(24):
        stats[hour] = {
            "mean_dispatch_delay_min": _mean(delays.get(hour, [])),
            "mean_passenger_dissatisfaction": _mean(pd.get(hour, [])),
            "mean_taxi_dissatisfaction": _mean(td.get(hour, [])),
            "requests": len(delays.get(hour, [])) + 0,
        }
    return stats


def summarize_by_label(
    results: Sequence[tuple[str, SimulationResult]],
) -> dict[str, dict[str, float]]:
    """label → summary dict, for sweep experiments (Fig. 6's x-axis)."""
    return {label: result.summary() for label, result in results}


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0
