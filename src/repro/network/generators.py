"""Synthetic city road-network generators.

Three families cover the shapes that matter for dispatch experiments:

* :func:`grid_city` — Manhattan-style lattice streets.
* :func:`radial_city` — ring + spoke layout typical of European cores.
* :func:`random_geometric_city` — irregular suburban sprawl (random
  geometric graph, largest connected component kept).

All generators return a :class:`repro.network.graph.RoadNetwork` whose
coordinates are in kilometres, so they can be used directly as distance
oracles in experiments.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.point import Point
from repro.network.graph import RoadNetwork

__all__ = ["grid_city", "radial_city", "random_geometric_city"]


def grid_city(rows: int, cols: int, block_km: float = 0.2) -> RoadNetwork:
    """A ``rows × cols`` street lattice with square blocks.

    Node ids are ``r * cols + c``; the network spans
    ``(cols−1)·block_km × (rows−1)·block_km`` kilometres.
    """
    if rows < 2 or cols < 2:
        raise ValueError(f"grid needs at least 2x2 intersections, got {rows}x{cols}")
    if block_km <= 0.0:
        raise ValueError(f"block_km must be positive, got {block_km}")
    network = RoadNetwork()
    for r in range(rows):
        for c in range(cols):
            network.add_node(r * cols + c, Point(c * block_km, r * block_km))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                network.add_edge(node, node + 1, block_km)
            if r + 1 < rows:
                network.add_edge(node, node + cols, block_km)
    return network


def radial_city(rings: int, spokes: int, ring_spacing_km: float = 1.0) -> RoadNetwork:
    """Concentric rings connected by radial spokes, with a centre node.

    Node 0 is the centre; ring ``q`` (1-based) node ``s`` has id
    ``1 + (q−1)·spokes + s``.
    """
    if rings < 1:
        raise ValueError(f"need at least one ring, got {rings}")
    if spokes < 3:
        raise ValueError(f"need at least three spokes, got {spokes}")
    if ring_spacing_km <= 0.0:
        raise ValueError(f"ring_spacing_km must be positive, got {ring_spacing_km}")
    network = RoadNetwork()
    network.add_node(0, Point(0.0, 0.0))
    for q in range(1, rings + 1):
        radius = q * ring_spacing_km
        for s in range(spokes):
            angle = 2.0 * math.pi * s / spokes
            node = 1 + (q - 1) * spokes + s
            network.add_node(node, Point(radius * math.cos(angle), radius * math.sin(angle)))
    for q in range(1, rings + 1):
        base = 1 + (q - 1) * spokes
        for s in range(spokes):
            network.add_edge(base + s, base + (s + 1) % spokes)
        if q == 1:
            for s in range(spokes):
                network.add_edge(0, base + s)
        else:
            inner = 1 + (q - 2) * spokes
            for s in range(spokes):
                network.add_edge(inner + s, base + s)
    return network


def random_geometric_city(
    n_nodes: int,
    span_km: float,
    connect_radius_km: float,
    seed: int = 0,
) -> RoadNetwork:
    """A random geometric graph restricted to its largest component.

    Nodes are placed uniformly in a ``span_km × span_km`` square and
    connected when within ``connect_radius_km``.  Ids are re-labelled
    0..m−1 inside the surviving component.
    """
    if n_nodes < 2:
        raise ValueError(f"need at least two nodes, got {n_nodes}")
    if span_km <= 0.0 or connect_radius_km <= 0.0:
        raise ValueError("span_km and connect_radius_km must be positive")
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0.0, span_km, size=(n_nodes, 2))

    # Build adjacency with a coarse grid to avoid the O(n^2) scan.
    cell = connect_radius_km
    buckets: dict[tuple[int, int], list[int]] = {}
    for i, (x, y) in enumerate(coords):
        buckets.setdefault((int(x // cell), int(y // cell)), []).append(i)
    edges: list[tuple[int, int, float]] = []
    for (cx, cy), members in buckets.items():
        neighbors: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                neighbors.extend(buckets.get((cx + dx, cy + dy), ()))
        for i in members:
            for j in neighbors:
                if j <= i:
                    continue
                d = math.hypot(coords[i][0] - coords[j][0], coords[i][1] - coords[j][1])
                if d <= connect_radius_km:
                    edges.append((i, j, d))

    # Largest connected component via union-find.
    parent = list(range(n_nodes))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i, j, _ in edges:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj
    component: dict[int, list[int]] = {}
    for i in range(n_nodes):
        component.setdefault(find(i), []).append(i)
    largest = max(component.values(), key=len)
    keep = set(largest)
    relabel = {old: new for new, old in enumerate(sorted(keep))}

    network = RoadNetwork()
    for old in sorted(keep):
        network.add_node(relabel[old], Point(float(coords[old][0]), float(coords[old][1])))
    for i, j, d in edges:
        if i in keep and j in keep:
            network.add_edge(relabel[i], relabel[j], d)
    return network
