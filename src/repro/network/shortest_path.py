"""Shortest-path algorithms over adjacency-list graphs.

The road network stores adjacency as ``dict[node, list[(neighbor, w)]]``.
We implement Dijkstra (single source, optionally early-terminated at a
target) and A* with a coordinate heuristic, plus a small LRU-style cache
of single-source runs, because a dispatch frame asks for distances from
one taxi to many pickups (and one pickup to many taxis), which a cached
single-source run answers in O(1) each after the first query.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from collections.abc import Callable, Hashable, Mapping

__all__ = ["dijkstra", "dijkstra_to_target", "astar", "SingleSourceCache"]

Adjacency = Mapping[Hashable, list[tuple[Hashable, float]]]


def dijkstra(adjacency: Adjacency, source: Hashable) -> dict[Hashable, float]:
    """Distances from ``source`` to every reachable node.

    Edge weights must be non-negative; a negative weight raises
    ``ValueError`` when relaxed.
    """
    dist: dict[Hashable, float] = {source: 0.0}
    heap: list[tuple[float, int, Hashable]] = [(0.0, 0, source)]
    counter = 1
    settled: set[Hashable] = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor, weight in adjacency.get(node, ()):
            if weight < 0.0:
                raise ValueError(f"negative edge weight {weight} on {node!r}->{neighbor!r}")
            nd = d + weight
            if nd < dist.get(neighbor, math.inf):
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, counter, neighbor))
                counter += 1
    return dist


def dijkstra_to_target(adjacency: Adjacency, source: Hashable, target: Hashable) -> float:
    """Shortest distance from ``source`` to ``target``; ``inf`` if unreachable."""
    if source == target:
        return 0.0
    dist: dict[Hashable, float] = {source: 0.0}
    heap: list[tuple[float, int, Hashable]] = [(0.0, 0, source)]
    counter = 1
    settled: set[Hashable] = set()
    while heap:
        d, _, node = heapq.heappop(heap)
        if node == target:
            return d
        if node in settled:
            continue
        settled.add(node)
        for neighbor, weight in adjacency.get(node, ()):
            if weight < 0.0:
                raise ValueError(f"negative edge weight {weight} on {node!r}->{neighbor!r}")
            nd = d + weight
            if nd < dist.get(neighbor, math.inf):
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, counter, neighbor))
                counter += 1
    return math.inf


def astar(
    adjacency: Adjacency,
    source: Hashable,
    target: Hashable,
    heuristic: Callable[[Hashable], float],
) -> float:
    """A* shortest distance with an admissible heuristic to ``target``.

    ``heuristic(node)`` must never overestimate the true remaining
    distance, otherwise the result may be suboptimal.
    """
    if source == target:
        return 0.0
    g: dict[Hashable, float] = {source: 0.0}
    heap: list[tuple[float, int, Hashable]] = [(heuristic(source), 0, source)]
    counter = 1
    settled: set[Hashable] = set()
    while heap:
        _, _, node = heapq.heappop(heap)
        if node == target:
            return g[node]
        if node in settled:
            continue
        settled.add(node)
        for neighbor, weight in adjacency.get(node, ()):
            nd = g[node] + weight
            if nd < g.get(neighbor, math.inf):
                g[neighbor] = nd
                heapq.heappush(heap, (nd + heuristic(neighbor), counter, neighbor))
                counter += 1
    return math.inf


class SingleSourceCache:
    """An LRU cache of single-source Dijkstra results.

    One dispatch frame issues many ``distance(taxi, pickup)`` queries with
    a small set of distinct sources; caching whole single-source maps
    turns the per-frame cost into one Dijkstra per distinct endpoint.
    """

    def __init__(self, adjacency: Adjacency, max_sources: int = 256):
        if max_sources < 1:
            raise ValueError(f"max_sources must be positive, got {max_sources}")
        self._adjacency = adjacency
        self._max_sources = max_sources
        self._cache: OrderedDict[Hashable, dict[Hashable, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def distances_from(self, source: Hashable) -> dict[Hashable, float]:
        if source in self._cache:
            self._cache.move_to_end(source)
            self.hits += 1
            return self._cache[source]
        self.misses += 1
        result = dijkstra(self._adjacency, source)
        self._cache[source] = result
        if len(self._cache) > self._max_sources:
            self._cache.popitem(last=False)
        return result

    def distance(self, source: Hashable, target: Hashable) -> float:
        return self.distances_from(source).get(target, math.inf)

    def many_to_many(
        self, sources: list[Hashable], targets: list[Hashable]
    ) -> list[list[float]]:
        """Batched node-pair distances as a ``len(sources) × len(targets)``
        row-major table (``inf`` marks unreachable pairs).

        One Dijkstra per *distinct* source, through the same LRU cache as
        the scalar path, so a frame's one-to-many and many-to-many
        queries share work both within and across frames.
        """
        rows_by_source: dict[Hashable, list[float]] = {}
        out: list[list[float]] = []
        for source in sources:
            row = rows_by_source.get(source)
            if row is None:
                dist_map = self.distances_from(source)
                row = [dist_map.get(t, math.inf) for t in targets]
                rows_by_source[source] = row
            out.append(row)
        return out

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0
