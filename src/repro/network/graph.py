"""A road network that doubles as a :class:`DistanceOracle`.

Nodes are intersections at planar coordinates; edges are road segments
weighted by length.  Arbitrary query points (taxi positions, pickups)
are snapped to their nearest node through a grid spatial index, and the
oracle distance is::

    D(a, b) = |a - snap(a)| + shortest_path(snap(a), snap(b)) + |snap(b) - b|

which keeps the oracle a metric-like function usable as a drop-in
replacement for :class:`repro.geometry.EuclideanDistance`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.geometry.batch import as_point_array
from repro.geometry.point import Point
from repro.geometry.spatial_index import GridSpatialIndex
from repro.network.shortest_path import SingleSourceCache

__all__ = ["RoadNetwork"]


class RoadNetwork:
    """A weighted road graph with point snapping and cached shortest paths.

    Implements both the scalar :class:`repro.geometry.DistanceOracle`
    protocol and the batch API (``pairwise`` / ``distances`` /
    ``paired``).  Batch queries snap every distinct point once, then run
    one Dijkstra per distinct snapped source through the shared LRU
    cache, so a frame-sized ``pairwise`` costs |unique sources| Dijkstra
    runs instead of |A|·|B| scalar queries.  The batch results reuse the
    exact scalar snap and cached distance maps, so they are bit-identical
    to ``distance`` (``batch_exact``).
    """

    batch_exact = True

    def __init__(self, cache_sources: int = 2048):
        self._coords: dict[int, Point] = {}
        self._adjacency: dict[int, list[tuple[int, float]]] = {}
        self._index: GridSpatialIndex | None = None
        self._cache: SingleSourceCache | None = None
        self._cache_sources = cache_sources

    # -- construction --------------------------------------------------

    def add_node(self, node_id: int, point: Point) -> None:
        """Add an intersection; re-adding an id raises ``ValueError``."""
        if node_id in self._coords:
            raise ValueError(f"node {node_id} already exists")
        self._coords[node_id] = point
        self._adjacency[node_id] = []
        self._invalidate()

    def add_edge(self, u: int, v: int, length_km: float | None = None, *, oneway: bool = False) -> None:
        """Add a road segment; length defaults to the Euclidean gap."""
        if u not in self._coords or v not in self._coords:
            raise KeyError(f"both endpoints must exist before adding edge ({u}, {v})")
        if length_km is None:
            length_km = self._coords[u].distance_to(self._coords[v])
        if length_km < 0.0:
            raise ValueError(f"edge length must be non-negative, got {length_km}")
        self._adjacency[u].append((v, length_km))
        if not oneway:
            self._adjacency[v].append((u, length_km))
        self._invalidate()

    def _invalidate(self) -> None:
        self._index = None
        self._cache = None

    # -- inspection ----------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._coords)

    @property
    def edge_count(self) -> int:
        """Number of directed adjacency entries (undirected edges count twice)."""
        return sum(len(neighbors) for neighbors in self._adjacency.values())

    def node_point(self, node_id: int) -> Point:
        return self._coords[node_id]

    def nodes(self) -> Iterable[int]:
        return self._coords.keys()

    def neighbors(self, node_id: int) -> list[tuple[int, float]]:
        return list(self._adjacency[node_id])

    # -- queries ---------------------------------------------------------

    def _ensure_ready(self) -> None:
        if self._index is None:
            if not self._coords:
                raise ValueError("road network has no nodes")
            span = self._typical_spacing()
            self._index = GridSpatialIndex(cell_size=span)
            self._index.bulk_load(self._coords.items())
        if self._cache is None:
            self._cache = SingleSourceCache(self._adjacency, max_sources=self._cache_sources)

    def _typical_spacing(self) -> float:
        xs = [p.x for p in self._coords.values()]
        ys = [p.y for p in self._coords.values()]
        area = max(max(xs) - min(xs), 1e-9) * max(max(ys) - min(ys), 1e-9)
        return max(math.sqrt(area / max(len(self._coords), 1)), 1e-6)

    def snap(self, point: Point) -> tuple[int, float]:
        """The nearest node id and its straight-line offset from ``point``."""
        self._ensure_ready()
        assert self._index is not None
        results = self._index.nearest(point, k=1)
        if not results:
            raise ValueError("road network has no nodes")
        node_id, offset = results[0]
        return int(node_id), offset

    def node_distance(self, u: int, v: int) -> float:
        """Shortest-path distance between two nodes; ``inf`` if disconnected."""
        self._ensure_ready()
        assert self._cache is not None
        return self._cache.distance(u, v)

    def distance(self, a: Point, b: Point) -> float:
        """DistanceOracle interface: snapped shortest-path distance in km."""
        u, offset_a = self.snap(a)
        v, offset_b = self.snap(b)
        if u == v:
            return a.distance_to(b)
        return offset_a + self.node_distance(u, v) + offset_b

    # -- batch queries ---------------------------------------------------

    def _snap_points(self, points: Sequence[Point] | np.ndarray) -> tuple[list[Point], list[tuple[int, float]]]:
        """Validate, materialize, and snap a batch of points.

        Snapping memoizes by coordinate so repeated points (a taxi queried
        against many pickups, duplicated trace endpoints) snap once.
        """
        array = as_point_array(points)
        pts = [Point(float(x), float(y)) for x, y in array]
        memo: dict[tuple[float, float], tuple[int, float]] = {}
        snaps: list[tuple[int, float]] = []
        for p in pts:
            key = (p.x, p.y)
            snap = memo.get(key)
            if snap is None:
                snap = self.snap(p)
                memo[key] = snap
            snaps.append(snap)
        return pts, snaps

    def pairwise(self, sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
        """The ``(len(sources), len(targets))`` matrix of snapped
        shortest-path km, rows following the source-row convention."""
        pts_a, snaps_a = self._snap_points(sources)
        pts_b, snaps_b = self._snap_points(targets)
        if not pts_a or not pts_b:
            return np.empty((len(pts_a), len(pts_b)), dtype=np.float64)
        self._ensure_ready()
        assert self._cache is not None
        source_nodes = [u for u, _ in snaps_a]
        target_nodes = [v for v, _ in snaps_b]
        node_km = np.asarray(
            self._cache.many_to_many(source_nodes, target_nodes), dtype=np.float64
        )
        offsets_a = np.array([off for _, off in snaps_a], dtype=np.float64)
        offsets_b = np.array([off for _, off in snaps_b], dtype=np.float64)
        # Same association order as the scalar path:
        # (offset_a + node_distance) + offset_b.
        out = (offsets_a[:, None] + node_km) + offsets_b[None, :]
        same_node = np.asarray(source_nodes)[:, None] == np.asarray(target_nodes)[None, :]
        if same_node.any():
            for i, j in zip(*np.nonzero(same_node)):
                out[i, j] = pts_a[i].distance_to(pts_b[j])
        return out

    def distances(self, origin: Point, targets: Sequence[Point]) -> np.ndarray:
        """One-to-many snapped shortest-path distances in km."""
        return self.pairwise(sources=[origin], targets=targets)[0]

    def paired(self, sources: Sequence[Point], targets: Sequence[Point]) -> np.ndarray:
        """Elementwise snapped shortest-path distances in km."""
        pts_a, snaps_a = self._snap_points(sources)
        pts_b, snaps_b = self._snap_points(targets)
        if len(pts_a) != len(pts_b):
            raise ValueError(f"paired inputs differ in length: {len(pts_a)} vs {len(pts_b)}")
        out = np.empty(len(pts_a), dtype=np.float64)
        for i, ((u, off_a), (v, off_b)) in enumerate(zip(snaps_a, snaps_b)):
            if u == v:
                out[i] = pts_a[i].distance_to(pts_b[i])
            else:
                out[i] = off_a + self.node_distance(u, v) + off_b
        return out

    @property
    def cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of the single-source cache since construction."""
        if self._cache is None:
            return (0, 0)
        return (self._cache.hits, self._cache.misses)
