"""A road network that doubles as a :class:`DistanceOracle`.

Nodes are intersections at planar coordinates; edges are road segments
weighted by length.  Arbitrary query points (taxi positions, pickups)
are snapped to their nearest node through a grid spatial index, and the
oracle distance is::

    D(a, b) = |a - snap(a)| + shortest_path(snap(a), snap(b)) + |snap(b) - b|

which keeps the oracle a metric-like function usable as a drop-in
replacement for :class:`repro.geometry.EuclideanDistance`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.geometry.point import Point
from repro.geometry.spatial_index import GridSpatialIndex
from repro.network.shortest_path import SingleSourceCache

__all__ = ["RoadNetwork"]


class RoadNetwork:
    """A weighted road graph with point snapping and cached shortest paths."""

    def __init__(self, cache_sources: int = 512):
        self._coords: dict[int, Point] = {}
        self._adjacency: dict[int, list[tuple[int, float]]] = {}
        self._index: GridSpatialIndex | None = None
        self._cache: SingleSourceCache | None = None
        self._cache_sources = cache_sources

    # -- construction --------------------------------------------------

    def add_node(self, node_id: int, point: Point) -> None:
        """Add an intersection; re-adding an id raises ``ValueError``."""
        if node_id in self._coords:
            raise ValueError(f"node {node_id} already exists")
        self._coords[node_id] = point
        self._adjacency[node_id] = []
        self._invalidate()

    def add_edge(self, u: int, v: int, length_km: float | None = None, *, oneway: bool = False) -> None:
        """Add a road segment; length defaults to the Euclidean gap."""
        if u not in self._coords or v not in self._coords:
            raise KeyError(f"both endpoints must exist before adding edge ({u}, {v})")
        if length_km is None:
            length_km = self._coords[u].distance_to(self._coords[v])
        if length_km < 0.0:
            raise ValueError(f"edge length must be non-negative, got {length_km}")
        self._adjacency[u].append((v, length_km))
        if not oneway:
            self._adjacency[v].append((u, length_km))
        self._invalidate()

    def _invalidate(self) -> None:
        self._index = None
        self._cache = None

    # -- inspection ----------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._coords)

    @property
    def edge_count(self) -> int:
        """Number of directed adjacency entries (undirected edges count twice)."""
        return sum(len(neighbors) for neighbors in self._adjacency.values())

    def node_point(self, node_id: int) -> Point:
        return self._coords[node_id]

    def nodes(self) -> Iterable[int]:
        return self._coords.keys()

    def neighbors(self, node_id: int) -> list[tuple[int, float]]:
        return list(self._adjacency[node_id])

    # -- queries ---------------------------------------------------------

    def _ensure_ready(self) -> None:
        if self._index is None:
            if not self._coords:
                raise ValueError("road network has no nodes")
            span = self._typical_spacing()
            self._index = GridSpatialIndex(cell_size=span)
            self._index.bulk_load(self._coords.items())
        if self._cache is None:
            self._cache = SingleSourceCache(self._adjacency, max_sources=self._cache_sources)

    def _typical_spacing(self) -> float:
        xs = [p.x for p in self._coords.values()]
        ys = [p.y for p in self._coords.values()]
        area = max(max(xs) - min(xs), 1e-9) * max(max(ys) - min(ys), 1e-9)
        return max(math.sqrt(area / max(len(self._coords), 1)), 1e-6)

    def snap(self, point: Point) -> tuple[int, float]:
        """The nearest node id and its straight-line offset from ``point``."""
        self._ensure_ready()
        assert self._index is not None
        results = self._index.nearest(point, k=1)
        if not results:
            raise ValueError("road network has no nodes")
        node_id, offset = results[0]
        return int(node_id), offset

    def node_distance(self, u: int, v: int) -> float:
        """Shortest-path distance between two nodes; ``inf`` if disconnected."""
        self._ensure_ready()
        assert self._cache is not None
        return self._cache.distance(u, v)

    def distance(self, a: Point, b: Point) -> float:
        """DistanceOracle interface: snapped shortest-path distance in km."""
        u, offset_a = self.snap(a)
        v, offset_b = self.snap(b)
        if u == v:
            return a.distance_to(b)
        return offset_a + self.node_distance(u, v) + offset_b

    @property
    def cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of the single-source cache since construction."""
        if self._cache is None:
            return (0, 0)
        return (self._cache.hits, self._cache.misses)
