"""Road-network substrate: graphs, generators, and shortest paths."""

from repro.network.generators import grid_city, radial_city, random_geometric_city
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import (
    SingleSourceCache,
    astar,
    dijkstra,
    dijkstra_to_target,
)

__all__ = [
    "RoadNetwork",
    "grid_city",
    "radial_city",
    "random_geometric_city",
    "dijkstra",
    "dijkstra_to_target",
    "astar",
    "SingleSourceCache",
]
