"""Ensure the src/ layout is importable when the package is not installed."""
import os
import signal
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Per-test wall-clock ceiling in seconds (0 disables the watchdog).
#: A hung frame — the exact failure mode the resilience layer exists to
#: prevent — should fail one test loudly, not stall the whole suite.
_WATCHDOG_S = int(os.environ.get("REPRO_TEST_TIMEOUT_S", "120"))


@pytest.fixture(autouse=True)
def _test_watchdog():
    """Fail any test that runs longer than the watchdog allows.

    Uses SIGALRM, so it is active only on the main thread of platforms
    that have it (POSIX); elsewhere it is a no-op.  Nested alarms are
    not preserved — the test suite does not otherwise use SIGALRM.
    """
    if _WATCHDOG_S <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _timed_out(signum, frame):
        raise TimeoutError(f"test exceeded the {_WATCHDOG_S}s watchdog")

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.alarm(_WATCHDOG_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
