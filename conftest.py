"""Ensure the src/ layout is importable when the package is not installed."""
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
